// cdr.hpp — CORBA Common Data Representation (CDR) marshaling, the
// substrate under GIOP (DESIGN.md S9). Implements the CORBA 2.2 rules FTMP
// relies on:
//   * primitives aligned to their natural size, relative to the start of
//     the encapsulation;
//   * receiver-makes-right byte ordering (both orders decodable);
//   * strings are a ulong length *including* the terminating NUL, followed
//     by the bytes and the NUL;
//   * sequences are a ulong element count followed by the elements;
//   * encapsulations are octet sequences whose first octet is the byte
//     order of the nested data.
#pragma once

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>

#include "common/bytes.hpp"
#include "common/codec.hpp"

namespace ftcorba::giop {

/// Thrown on malformed CDR input; callers drop the message.
class CdrError : public std::runtime_error {
 public:
  explicit CdrError(const std::string& what) : std::runtime_error(what) {}
};

/// Marshals values into a CDR stream.
class CdrWriter {
 public:
  explicit CdrWriter(ByteOrder order = ByteOrder::kBig) : order_(order) {}

  [[nodiscard]] ByteOrder order() const { return order_; }

  /// Inserts padding so the next value starts at a multiple of `alignment`.
  void align(std::size_t alignment);

  void octet(std::uint8_t v) { buf_.push_back(v); }
  void boolean(bool v) { octet(v ? 1 : 0); }
  void chr(char v) { octet(static_cast<std::uint8_t>(v)); }
  void ushort_(std::uint16_t v) { put_int(v); }
  void short_(std::int16_t v) { put_int(static_cast<std::uint16_t>(v)); }
  void ulong_(std::uint32_t v) { put_int(v); }
  void long_(std::int32_t v) { put_int(static_cast<std::uint32_t>(v)); }
  void ulonglong_(std::uint64_t v) { put_int(v); }
  void longlong_(std::int64_t v) { put_int(static_cast<std::uint64_t>(v)); }

  void float_(float v) {
    std::uint32_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    put_int(bits);
  }
  void double_(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    put_int(bits);
  }

  /// CORBA string: ulong length including NUL, bytes, NUL.
  void string(std::string_view s);

  /// sequence<octet>: ulong count + raw bytes.
  void octet_seq(BytesView b);

  /// Raw bytes with no count or alignment (for pre-encoded payloads).
  void raw(BytesView b) { buf_.insert(buf_.end(), b.begin(), b.end()); }

  /// Encapsulation: ulong length + (byte-order octet + nested bytes).
  void encapsulation(const CdrWriter& nested);

  [[nodiscard]] std::size_t size() const { return buf_.size(); }
  [[nodiscard]] const Bytes& bytes() const { return buf_; }
  [[nodiscard]] Bytes take() && { return std::move(buf_); }

  /// Overwrites a ulong previously written at `offset`.
  void patch_ulong(std::size_t offset, std::uint32_t v);

 private:
  template <typename T>
  void put_int(T v) {
    align(sizeof(T));
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      const std::size_t shift =
          order_ == ByteOrder::kBig ? (sizeof(T) - 1 - i) * 8 : i * 8;
      buf_.push_back(static_cast<std::uint8_t>((v >> shift) & 0xFF));
    }
  }

  ByteOrder order_;
  Bytes buf_;
};

/// Unmarshals values from a CDR stream. Bounds-checked; throws CdrError.
class CdrReader {
 public:
  explicit CdrReader(BytesView data, ByteOrder order = ByteOrder::kBig)
      : data_(data), order_(order) {}

  [[nodiscard]] ByteOrder order() const { return order_; }
  void set_order(ByteOrder order) { order_ = order; }

  /// Skips padding so the next value is read from a multiple of `alignment`.
  void align(std::size_t alignment);

  [[nodiscard]] std::uint8_t octet();
  [[nodiscard]] bool boolean() { return octet() != 0; }
  [[nodiscard]] char chr() { return static_cast<char>(octet()); }
  [[nodiscard]] std::uint16_t ushort_() { return get_int<std::uint16_t>(); }
  [[nodiscard]] std::int16_t short_() { return static_cast<std::int16_t>(get_int<std::uint16_t>()); }
  [[nodiscard]] std::uint32_t ulong_() { return get_int<std::uint32_t>(); }
  [[nodiscard]] std::int32_t long_() { return static_cast<std::int32_t>(get_int<std::uint32_t>()); }
  [[nodiscard]] std::uint64_t ulonglong_() { return get_int<std::uint64_t>(); }
  [[nodiscard]] std::int64_t longlong_() { return static_cast<std::int64_t>(get_int<std::uint64_t>()); }

  [[nodiscard]] float float_() {
    const std::uint32_t bits = get_int<std::uint32_t>();
    float v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  [[nodiscard]] double double_() {
    const std::uint64_t bits = get_int<std::uint64_t>();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  [[nodiscard]] std::string string();
  [[nodiscard]] Bytes octet_seq();

  /// Enters an encapsulation: returns a reader over the nested bytes with
  /// the nested byte order applied, and skips past it in this stream.
  [[nodiscard]] CdrReader encapsulation();

  [[nodiscard]] std::size_t position() const { return pos_; }
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] bool exhausted() const { return pos_ == data_.size(); }
  [[nodiscard]] BytesView rest() const { return data_.subspan(pos_); }
  void skip(std::size_t n);

 private:
  void require(std::size_t n) const {
    if (pos_ + n > data_.size()) throw CdrError("CDR read past end");
  }
  template <typename T>
  [[nodiscard]] T get_int() {
    align(sizeof(T));
    require(sizeof(T));
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      const std::size_t shift =
          order_ == ByteOrder::kBig ? (sizeof(T) - 1 - i) * 8 : i * 8;
      v |= static_cast<T>(static_cast<T>(data_[pos_ + i]) << shift);
    }
    pos_ += sizeof(T);
    return v;
  }

  BytesView data_;
  ByteOrder order_;
  std::size_t pos_{0};
};

}  // namespace ftcorba::giop
