// messages.hpp — the GIOP 1.0 message set (CORBA 2.2 §13): the eight
// message types the paper's §3.1 lists as the payloads FTMP encapsulates
// (Request, Reply, CancelRequest, LocateRequest, LocateReply,
// CloseConnection, MessageError, Fragment).
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/bytes.hpp"
#include "giop/cdr.hpp"

namespace ftcorba::giop {

/// GIOP message types (the values are the on-wire discriminants).
enum class MsgType : std::uint8_t {
  kRequest = 0,
  kReply = 1,
  kCancelRequest = 2,
  kLocateRequest = 3,
  kLocateReply = 4,
  kCloseConnection = 5,
  kMessageError = 6,
  kFragment = 7,
};

/// Human-readable message-type name.
[[nodiscard]] const char* to_string(MsgType t);

/// Reply outcome (GIOP 1.0 ReplyStatusType).
enum class ReplyStatus : std::uint32_t {
  kNoException = 0,
  kUserException = 1,
  kSystemException = 2,
  kLocationForward = 3,
};

/// LocateReply outcome.
enum class LocateStatus : std::uint32_t {
  kUnknownObject = 0,
  kObjectHere = 1,
  kObjectForward = 2,
};

/// One GIOP service-context entry (id + encapsulated data).
struct ServiceContext {
  std::uint32_t context_id = 0;
  Bytes context_data;
  friend bool operator==(const ServiceContext&, const ServiceContext&) = default;
};

/// GIOP message header: 'GIOP', version, byte-order flag, type, body size.
struct GiopHeader {
  std::uint8_t major = 1;
  std::uint8_t minor = 0;
  ByteOrder byte_order = ByteOrder::kBig;
  MsgType type = MsgType::kMessageError;
  std::uint32_t message_size = 0;  // body bytes after the 12-byte header
  friend bool operator==(const GiopHeader&, const GiopHeader&) = default;
};

/// Encoded size of the fixed GIOP header.
inline constexpr std::size_t kGiopHeaderSize = 12;

/// Request: an operation invocation. `body` carries the marshaled in/inout
/// arguments (already CDR-encoded by the stub).
struct Request {
  std::vector<ServiceContext> service_context;
  std::uint32_t request_id = 0;
  bool response_expected = true;
  Bytes object_key;
  std::string operation;
  Bytes requesting_principal;
  Bytes body;
  friend bool operator==(const Request&, const Request&) = default;
};

/// Reply: the result of a Request with the same request_id.
struct Reply {
  std::vector<ServiceContext> service_context;
  std::uint32_t request_id = 0;
  ReplyStatus status = ReplyStatus::kNoException;
  Bytes body;  // marshaled results, exception, or forwarded IOR
  friend bool operator==(const Reply&, const Reply&) = default;
};

/// CancelRequest: the client no longer awaits the reply to request_id.
struct CancelRequest {
  std::uint32_t request_id = 0;
  friend bool operator==(const CancelRequest&, const CancelRequest&) = default;
};

/// LocateRequest: does this target host the object?
struct LocateRequest {
  std::uint32_t request_id = 0;
  Bytes object_key;
  friend bool operator==(const LocateRequest&, const LocateRequest&) = default;
};

/// LocateReply: answer to LocateRequest.
struct LocateReply {
  std::uint32_t request_id = 0;
  LocateStatus status = LocateStatus::kUnknownObject;
  Bytes body;  // forwarded IOR when kObjectForward
  friend bool operator==(const LocateReply&, const LocateReply&) = default;
};

/// CloseConnection: orderly shutdown (header-only).
struct CloseConnection {
  friend bool operator==(const CloseConnection&, const CloseConnection&) = default;
};

/// MessageError: the peer sent something unintelligible (header-only).
struct MessageError {
  friend bool operator==(const MessageError&, const MessageError&) = default;
};

/// Fragment: continuation of a fragmented message (GIOP 1.1+ semantics;
/// carried for completeness of the eight-type set).
struct Fragment {
  Bytes data;
  friend bool operator==(const Fragment&, const Fragment&) = default;
};

/// Any GIOP message body.
using GiopBody = std::variant<Request, Reply, CancelRequest, LocateRequest,
                              LocateReply, CloseConnection, MessageError, Fragment>;

/// A complete GIOP message.
struct GiopMessage {
  GiopHeader header;
  GiopBody body;
  friend bool operator==(const GiopMessage&, const GiopMessage&) = default;
};

/// The MsgType implied by a body alternative.
[[nodiscard]] MsgType type_of(const GiopBody& body);

/// Encodes a GIOP message (header.message_size and header.type are derived
/// from the body).
[[nodiscard]] Bytes encode(const GiopMessage& message);

/// Decodes a GIOP message; throws CdrError on malformed input.
[[nodiscard]] GiopMessage decode(BytesView data);

/// True if `data` begins with the GIOP magic.
[[nodiscard]] bool looks_like_giop(BytesView data);

}  // namespace ftcorba::giop
