#include "common/log.hpp"

#include <cstdio>
#include <mutex>

namespace ftcorba {
namespace {
const char* level_name(LogLevel lvl) {
  switch (lvl) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
std::mutex& sink_mutex() {
  static std::mutex m;
  return m;
}
}  // namespace

Log::State& Log::state() {
  static State s;
  return s;
}

void Log::set_sink(std::function<void(LogLevel, const std::string&)> sink) {
  std::lock_guard<std::mutex> lock(sink_mutex());
  state().sink = std::move(sink);
}

void Log::write(LogLevel lvl, const std::string& msg) {
  if (static_cast<int>(lvl) < static_cast<int>(state().level)) return;
  std::lock_guard<std::mutex> lock(sink_mutex());
  if (state().sink) {
    state().sink(lvl, msg);
  } else {
    std::fprintf(stderr, "[%s] %s\n", level_name(lvl), msg.c_str());
  }
}

}  // namespace ftcorba
