// log.hpp — minimal leveled logger. Protocol layers log through this so
// tests can raise verbosity when debugging a failing seed; default level is
// kWarn so benches are quiet.
#pragma once

#include <cstdint>
#include <functional>
#include <sstream>
#include <string>

namespace ftcorba {

enum class LogLevel : std::uint8_t { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Process-wide log configuration.
class Log {
 public:
  /// Current minimum level that is emitted.
  [[nodiscard]] static LogLevel level() { return state().level; }
  /// Sets the minimum emitted level.
  static void set_level(LogLevel lvl) { state().level = lvl; }

  /// Replaces the sink (default writes to stderr). The sink receives fully
  /// formatted lines without a trailing newline.
  static void set_sink(std::function<void(LogLevel, const std::string&)> sink);

  /// Emits a line if `lvl` is at or above the configured level.
  static void write(LogLevel lvl, const std::string& msg);

 private:
  struct State {
    LogLevel level = LogLevel::kWarn;
    std::function<void(LogLevel, const std::string&)> sink;
  };
  static State& state();
};

/// Stream-style logging helper: LOG_AT(kDebug) << "rmp gap " << seq;
class LogLine {
 public:
  explicit LogLine(LogLevel lvl) : lvl_(lvl) {}
  ~LogLine() { Log::write(lvl_, os_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel lvl_;
  std::ostringstream os_;
};

}  // namespace ftcorba

/// Logs at the given level when enabled; the streaming expression is not
/// evaluated when the level is filtered out.
#define FTC_LOG(lvl)                                      \
  if (static_cast<int>(::ftcorba::Log::level()) <=        \
      static_cast<int>(::ftcorba::LogLevel::lvl))         \
  ::ftcorba::LogLine(::ftcorba::LogLevel::lvl)
