// stats.hpp — small online/offline statistics helpers used by the benchmark
// harnesses (latency distributions, throughput counters).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

namespace ftcorba {

/// Collects samples and answers summary queries. Percentiles use the
/// nearest-rank method on a sorted copy.
class Samples {
 public:
  /// Adds one observation.
  void add(double v) { values_.push_back(v); }

  /// Number of observations.
  [[nodiscard]] std::size_t count() const { return values_.size(); }

  /// Arithmetic mean (0 when empty).
  [[nodiscard]] double mean() const {
    if (values_.empty()) return 0.0;
    double sum = 0.0;
    for (double v : values_) sum += v;
    return sum / static_cast<double>(values_.size());
  }

  /// Sample standard deviation (0 for fewer than two observations).
  [[nodiscard]] double stddev() const {
    if (values_.size() < 2) return 0.0;
    const double m = mean();
    double acc = 0.0;
    for (double v : values_) acc += (v - m) * (v - m);
    return std::sqrt(acc / static_cast<double>(values_.size() - 1));
  }

  /// Smallest observation (0 when empty).
  [[nodiscard]] double min() const {
    return values_.empty() ? 0.0 : *std::min_element(values_.begin(), values_.end());
  }

  /// Largest observation (0 when empty).
  [[nodiscard]] double max() const {
    return values_.empty() ? 0.0 : *std::max_element(values_.begin(), values_.end());
  }

  /// p-th percentile, p in [0, 100]; nearest-rank on sorted data.
  [[nodiscard]] double percentile(double p) const {
    if (values_.empty()) return 0.0;
    std::vector<double> sorted = values_;
    std::sort(sorted.begin(), sorted.end());
    const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
  }

  /// Median (p50).
  [[nodiscard]] double median() const { return percentile(50.0); }

  /// Read-only access to raw samples.
  [[nodiscard]] const std::vector<double>& values() const { return values_; }

  /// Discards all samples.
  void clear() { values_.clear(); }

 private:
  std::vector<double> values_;
};

}  // namespace ftcorba
