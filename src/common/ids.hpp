// ids.hpp — strongly-typed identifiers used throughout the FTMP stack.
//
// The paper's header fields (source processor id, destination processor
// group id, sequence number, message timestamp, ack timestamp) and the
// fault-tolerance identifiers (fault tolerance domain id, object group id,
// connection id, request number) are all given distinct C++ types so that
// they cannot be accidentally interchanged.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

namespace ftcorba {

/// CRTP base for a strongly-typed integral identifier.
///
/// Provides comparison, hashing support and explicit raw-value access while
/// preventing implicit conversions between different id kinds.
template <typename Tag, typename Rep>
struct StrongId {
  Rep value{0};

  constexpr StrongId() = default;
  constexpr explicit StrongId(Rep v) : value(v) {}

  /// Raw integral value (for encoding on the wire).
  [[nodiscard]] constexpr Rep raw() const { return value; }

  friend constexpr auto operator<=>(const StrongId&, const StrongId&) = default;
};

/// Identifies one processor (one FTMP endpoint / host in a fault-tolerance
/// domain). Carried in every FTMP header as `source processor id`.
struct ProcessorId : StrongId<ProcessorId, std::uint32_t> {
  using StrongId::StrongId;
};

/// Identifies a processor group — the set of peer processors a message is
/// multicast to. Carried in every FTMP header as
/// `destination processor group id`.
struct ProcessorGroupId : StrongId<ProcessorGroupId, std::uint32_t> {
  using StrongId::StrongId;
};

/// Identifies a fault-tolerance domain (a scope of object-group identifiers
/// that shares an IP multicast address range).
struct FtDomainId : StrongId<FtDomainId, std::uint32_t> {
  using StrongId::StrongId;
};

/// Identifies an object group (the replicas of one CORBA object) within a
/// fault-tolerance domain.
struct ObjectGroupId : StrongId<ObjectGroupId, std::uint32_t> {
  using StrongId::StrongId;
};

/// A (simulated or real) IP multicast address. One per fault-tolerance
/// domain / processor group, per the paper's connection-sharing scheme.
struct McastAddress : StrongId<McastAddress, std::uint32_t> {
  using StrongId::StrongId;
};

/// Per-source message sequence number (RMP reliable delivery).
using SeqNum = std::uint64_t;

/// Lamport (or synchronized-clock) message timestamp (ROMP ordering).
using Timestamp = std::uint64_t;

/// Request number scoped to a logical connection; monotonically increasing
/// over all connections between two object groups (§4).
using RequestNum = std::uint64_t;

/// Identifier of a logical connection between a client object group and a
/// server object group (§4): the FT domain id and object group id of each
/// side.
struct ConnectionId {
  FtDomainId client_domain{};
  ObjectGroupId client_group{};
  FtDomainId server_domain{};
  ObjectGroupId server_group{};

  friend constexpr auto operator<=>(const ConnectionId&, const ConnectionId&) = default;
};

/// Human-readable rendering, e.g. for logs: "P3", "G7".
[[nodiscard]] inline std::string to_string(ProcessorId p) { return "P" + std::to_string(p.raw()); }
[[nodiscard]] inline std::string to_string(ProcessorGroupId g) { return "G" + std::to_string(g.raw()); }
[[nodiscard]] inline std::string to_string(const ConnectionId& c) {
  return "conn(" + std::to_string(c.client_domain.raw()) + ":" + std::to_string(c.client_group.raw()) +
         "->" + std::to_string(c.server_domain.raw()) + ":" + std::to_string(c.server_group.raw()) + ")";
}

}  // namespace ftcorba

namespace std {
template <>
struct hash<ftcorba::ProcessorId> {
  size_t operator()(const ftcorba::ProcessorId& id) const noexcept { return hash<uint32_t>{}(id.raw()); }
};
template <>
struct hash<ftcorba::ProcessorGroupId> {
  size_t operator()(const ftcorba::ProcessorGroupId& id) const noexcept { return hash<uint32_t>{}(id.raw()); }
};
template <>
struct hash<ftcorba::FtDomainId> {
  size_t operator()(const ftcorba::FtDomainId& id) const noexcept { return hash<uint32_t>{}(id.raw()); }
};
template <>
struct hash<ftcorba::ObjectGroupId> {
  size_t operator()(const ftcorba::ObjectGroupId& id) const noexcept { return hash<uint32_t>{}(id.raw()); }
};
template <>
struct hash<ftcorba::McastAddress> {
  size_t operator()(const ftcorba::McastAddress& id) const noexcept { return hash<uint32_t>{}(id.raw()); }
};
template <>
struct hash<ftcorba::ConnectionId> {
  size_t operator()(const ftcorba::ConnectionId& c) const noexcept {
    // 64-bit mix of the four 32-bit components.
    uint64_t a = (uint64_t(c.client_domain.raw()) << 32) | c.client_group.raw();
    uint64_t b = (uint64_t(c.server_domain.raw()) << 32) | c.server_group.raw();
    a ^= b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2);
    return hash<uint64_t>{}(a);
  }
};
}  // namespace std
