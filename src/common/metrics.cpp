// metrics.cpp — registry, snapshot, exporters and trace ring. The whole TU
// is compiled out under FTMP_METRICS=OFF (see tools/check_metrics_off.cmake,
// which asserts the resulting object file defines no symbols).
#include "common/metrics.hpp"

#if FTCORBA_METRICS_ENABLED

#include <algorithm>
#include <deque>
#include <memory>
#include <mutex>
#include <sstream>
#include <unordered_map>

namespace ftcorba::metrics {

namespace {

struct Instrument {
  std::string name;
  std::string help;
  std::string unit;
  std::string layer;
  Type type;
  // Exactly one is engaged, per `type`.
  std::unique_ptr<detail::CounterCell> counter;
  std::unique_ptr<detail::GaugeCell> gauge;
  std::unique_ptr<detail::HistogramCell> histogram;
};

struct Registry {
  std::mutex mu;
  // deque: stable addresses so handles survive later registrations.
  std::deque<Instrument> instruments;
  std::unordered_map<std::string, Instrument*> by_name;

  Instrument* find_or_create(std::string_view name, std::string_view help,
                             std::string_view unit, std::string_view layer,
                             Type type, std::vector<double> bounds) {
    std::lock_guard lock(mu);
    auto it = by_name.find(std::string(name));
    if (it != by_name.end()) {
      return it->second->type == type ? it->second : nullptr;
    }
    Instrument& inst = instruments.emplace_back();
    inst.name = name;
    inst.help = help;
    inst.unit = unit;
    inst.layer = layer;
    inst.type = type;
    switch (type) {
      case Type::kCounter:
        inst.counter = std::make_unique<detail::CounterCell>();
        break;
      case Type::kGauge:
        inst.gauge = std::make_unique<detail::GaugeCell>();
        break;
      case Type::kHistogram:
        inst.histogram = std::make_unique<detail::HistogramCell>(std::move(bounds));
        break;
    }
    by_name[inst.name] = &inst;
    return &inst;
  }
};

Registry& registry() {
  static Registry r;
  return r;
}

constexpr std::size_t kTraceCapacity = 8192;

struct TraceRing {
  std::mutex mu;
  std::vector<TraceEvent> slots = std::vector<TraceEvent>(kTraceCapacity);
  std::uint64_t next = 0;  // total appended; next % capacity is the write slot
};

TraceRing& trace_ring() {
  static TraceRing r;
  return r;
}

// Formats a double the way Prometheus expects: no trailing zeros, inf as +Inf.
std::string fmt_double(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

void append_json_escaped(std::string& out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
}

}  // namespace

CounterHandle counter(std::string_view name, std::string_view help,
                      std::string_view unit, std::string_view layer) {
  Instrument* inst =
      registry().find_or_create(name, help, unit, layer, Type::kCounter, {});
  return CounterHandle{inst ? inst->counter.get() : nullptr};
}

GaugeHandle gauge(std::string_view name, std::string_view help,
                  std::string_view unit, std::string_view layer) {
  Instrument* inst =
      registry().find_or_create(name, help, unit, layer, Type::kGauge, {});
  return GaugeHandle{inst ? inst->gauge.get() : nullptr};
}

HistogramHandle histogram(std::string_view name, std::string_view help,
                          std::string_view unit, std::string_view layer,
                          std::vector<double> bounds) {
  Instrument* inst = registry().find_or_create(name, help, unit, layer,
                                               Type::kHistogram, std::move(bounds));
  return HistogramHandle{inst ? inst->histogram.get() : nullptr};
}

void reset_all() {
  Registry& r = registry();
  std::lock_guard lock(r.mu);
  for (Instrument& inst : r.instruments) {
    switch (inst.type) {
      case Type::kCounter:
        inst.counter->v.store(0, std::memory_order_relaxed);
        break;
      case Type::kGauge:
        inst.gauge->v.store(0, std::memory_order_relaxed);
        break;
      case Type::kHistogram:
        for (auto& b : inst.histogram->buckets)
          b.store(0, std::memory_order_relaxed);
        inst.histogram->count.store(0, std::memory_order_relaxed);
        inst.histogram->sum.store(0.0, std::memory_order_relaxed);
        break;
    }
  }
}

std::vector<Sample> snapshot() {
  Registry& r = registry();
  std::lock_guard lock(r.mu);
  std::vector<Sample> out;
  out.reserve(r.instruments.size());
  for (Instrument& inst : r.instruments) {
    Sample s;
    s.name = inst.name;
    s.help = inst.help;
    s.unit = inst.unit;
    s.layer = inst.layer;
    s.type = inst.type;
    switch (inst.type) {
      case Type::kCounter:
        s.counter = inst.counter->v.load(std::memory_order_relaxed);
        break;
      case Type::kGauge:
        s.gauge = inst.gauge->v.load(std::memory_order_relaxed);
        break;
      case Type::kHistogram: {
        detail::HistogramCell& h = *inst.histogram;
        s.bounds = h.bounds;
        s.buckets.reserve(h.buckets.size());
        for (auto& b : h.buckets)
          s.buckets.push_back(b.load(std::memory_order_relaxed));
        s.count = h.count.load(std::memory_order_relaxed);
        s.sum = h.sum.load(std::memory_order_relaxed);
        break;
      }
    }
    out.push_back(std::move(s));
  }
  return out;
}

std::string render_prometheus() {
  std::string out;
  for (const Sample& s : snapshot()) {
    out += "# HELP " + s.name + " " + s.help + "\n";
    out += "# TYPE " + s.name + " ";
    switch (s.type) {
      case Type::kCounter:
        out += "counter\n";
        out += s.name + " " + std::to_string(s.counter) + "\n";
        break;
      case Type::kGauge:
        out += "gauge\n";
        out += s.name + " " + std::to_string(s.gauge) + "\n";
        break;
      case Type::kHistogram: {
        out += "histogram\n";
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < s.bounds.size(); ++i) {
          cumulative += s.buckets[i];
          out += s.name + "_bucket{le=\"" + fmt_double(s.bounds[i]) + "\"} " +
                 std::to_string(cumulative) + "\n";
        }
        cumulative += s.buckets.empty() ? 0 : s.buckets.back();
        out += s.name + "_bucket{le=\"+Inf\"} " + std::to_string(cumulative) + "\n";
        out += s.name + "_sum " + fmt_double(s.sum) + "\n";
        out += s.name + "_count " + std::to_string(s.count) + "\n";
        break;
      }
    }
  }
  return out;
}

std::string render_json() {
  std::string out = "[";
  bool first = true;
  for (const Sample& s : snapshot()) {
    if (!first) out += ",";
    first = false;
    out += "\n  {\"name\":\"";
    append_json_escaped(out, s.name);
    out += "\",\"layer\":\"";
    append_json_escaped(out, s.layer);
    out += "\",\"unit\":\"";
    append_json_escaped(out, s.unit);
    out += "\",\"type\":\"";
    switch (s.type) {
      case Type::kCounter:
        out += "counter\",\"value\":" + std::to_string(s.counter);
        break;
      case Type::kGauge:
        out += "gauge\",\"value\":" + std::to_string(s.gauge);
        break;
      case Type::kHistogram: {
        out += "histogram\",\"count\":" + std::to_string(s.count) +
               ",\"sum\":" + fmt_double(s.sum) + ",\"bounds\":[";
        for (std::size_t i = 0; i < s.bounds.size(); ++i) {
          if (i) out += ",";
          out += fmt_double(s.bounds[i]);
        }
        out += "],\"buckets\":[";
        for (std::size_t i = 0; i < s.buckets.size(); ++i) {
          if (i) out += ",";
          out += std::to_string(s.buckets[i]);
        }
        out += "]";
        break;
      }
    }
    out += "}";
  }
  out += "\n]\n";
  return out;
}

void trace(const TraceEvent& e) {
  TraceRing& r = trace_ring();
  std::lock_guard lock(r.mu);
  r.slots[r.next % kTraceCapacity] = e;
  r.next += 1;
}

std::vector<TraceEvent> trace_events() {
  TraceRing& r = trace_ring();
  std::lock_guard lock(r.mu);
  std::vector<TraceEvent> out;
  const std::uint64_t retained = std::min<std::uint64_t>(r.next, kTraceCapacity);
  out.reserve(retained);
  for (std::uint64_t i = r.next - retained; i < r.next; ++i) {
    out.push_back(r.slots[i % kTraceCapacity]);
  }
  return out;
}

void trace_clear() {
  TraceRing& r = trace_ring();
  std::lock_guard lock(r.mu);
  r.next = 0;
}

std::string render_trace_json() {
  std::string out = "[";
  bool first = true;
  for (const TraceEvent& e : trace_events()) {
    if (!first) out += ",";
    first = false;
    out += "\n  {\"at_ns\":" + std::to_string(e.at) +
           ",\"processor\":" + std::to_string(e.processor) +
           ",\"group\":" + std::to_string(e.group) + ",\"kind\":\"" +
           to_string(e.kind) + "\",\"a\":" + std::to_string(e.a) +
           ",\"b\":" + std::to_string(e.b) + "}";
  }
  out += "\n]\n";
  return out;
}

}  // namespace ftcorba::metrics

#endif  // FTCORBA_METRICS_ENABLED
