// bytes.hpp — byte-buffer alias and small helpers shared by all codecs.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace ftcorba {

/// An owned, contiguous byte buffer (wire payloads, datagrams).
using Bytes = std::vector<std::uint8_t>;

/// A non-owning view over bytes being decoded.
using BytesView = std::span<const std::uint8_t>;

/// Builds a Bytes buffer from a string literal / std::string payload.
[[nodiscard]] inline Bytes bytes_of(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

/// Renders a byte buffer as lowercase hex, for diagnostics and golden tests.
[[nodiscard]] inline std::string to_hex(BytesView b) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(b.size() * 2);
  for (std::uint8_t v : b) {
    out.push_back(kHex[v >> 4]);
    out.push_back(kHex[v & 0xF]);
  }
  return out;
}

}  // namespace ftcorba
