// bytes.hpp — byte-buffer alias, ref-counted immutable buffers and the
// datagram buffer pool shared by all codecs and protocol layers.
//
// The zero-copy datagram path (docs/BUFFERS.md) rests on two pieces here:
//
//   * SharedBytes — an immutable, ref-counted view over an owned buffer.
//     Slicing shares the owning control block, so one arrival buffer can be
//     pinned simultaneously by the RMP retransmission store, the ROMP
//     ordering buffer and a DeliveredMessage event without a single copy.
//   * A small thread-local buffer pool. The few places that still must
//     materialise bytes (UDP receive, fragment reassembly, the
//     retransmit-flag patch) acquire recycled vectors instead of fresh
//     heap allocations, and every acquisition/copy is counted in the
//     process-global ftmp_stack_alloc_* statistics so benches can report
//     allocations and bytes copied per delivered message.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace ftcorba {

/// An owned, contiguous byte buffer (wire payloads, datagrams).
using Bytes = std::vector<std::uint8_t>;

/// A non-owning view over bytes being decoded.
using BytesView = std::span<const std::uint8_t>;

/// Builds a Bytes buffer from a string literal / std::string payload.
[[nodiscard]] inline Bytes bytes_of(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

/// Renders a byte buffer as lowercase hex, for diagnostics and golden tests.
[[nodiscard]] inline std::string to_hex(BytesView b) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(b.size() * 2);
  for (std::uint8_t v : b) {
    out.push_back(kHex[v >> 4]);
    out.push_back(kHex[v & 0xF]);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Buffer pool (bytes.cpp). Thread-local freelists recycle vector capacity;
// the statistics are process-global relaxed atomics, always compiled (the
// benches read them even in FTMP_METRICS=OFF builds) and mirrored into the
// metrics registry as ftmp_stack_alloc_* when metrics are enabled.
// ---------------------------------------------------------------------------

/// Allocation statistics for the shared-buffer layer, process-wide.
struct AllocStats {
  std::uint64_t fresh_buffers = 0;  ///< buffers newly heap-allocated
  std::uint64_t pool_hits = 0;      ///< buffers served from a freelist
  std::uint64_t copied_bytes = 0;   ///< bytes memcpy'd into owned buffers
};

/// Point-in-time copy of the process-global allocation statistics.
[[nodiscard]] AllocStats alloc_stats();

/// Zeroes the process-global allocation statistics (benches, tests).
void alloc_stats_reset();

/// Acquires a buffer from the calling thread's freelist (or the heap),
/// sized to `size` zero-filled bytes with at least that much capacity.
/// Counted as a pool hit or a fresh allocation.
[[nodiscard]] Bytes pool_acquire(std::size_t size);

namespace detail {
/// Accounts one owned buffer materialised outside the pool (bytes.cpp).
void note_adopted_buffer();
/// Accounts bytes memcpy'd outside SharedBytes::copy_of (flag patches,
/// fragment reassembly into pooled buffers).
void note_copied_bytes(std::size_t n);
}  // namespace detail

/// An immutable, ref-counted slice of an owned byte buffer.
///
/// Copying and slicing share the owning control block — no byte is touched.
/// The underlying storage is released (and, for pooled buffers, recycled)
/// when the last SharedBytes referencing it is destroyed. Converts
/// implicitly to BytesView, so every decoder and codec helper accepts it
/// unchanged.
class SharedBytes {
 public:
  SharedBytes() = default;

  /// Adopts an owned buffer (implicit: existing `Datagram{addr, std::move(b)}`
  /// call sites keep compiling). The buffer is NOT returned to the pool on
  /// release — use `copy_of` / `share_pooled` for recyclable storage.
  SharedBytes(Bytes&& owned)  // NOLINT(google-explicit-constructor)
      : owner_(std::make_shared<const Bytes>(std::move(owned))) {
    data_ = owner_->data();
    size_ = owner_->size();
    detail::note_adopted_buffer();
  }

  /// Copies `src` into a pooled buffer (counted in alloc_stats).
  [[nodiscard]] static SharedBytes copy_of(BytesView src);

  /// Wraps a buffer (typically from pool_acquire) so its storage returns to
  /// the releasing thread's freelist when the last reference drops.
  [[nodiscard]] static SharedBytes share_pooled(Bytes&& buf);

  [[nodiscard]] const std::uint8_t* data() const { return data_; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] const std::uint8_t* begin() const { return data_; }
  [[nodiscard]] const std::uint8_t* end() const { return data_ + size_; }
  [[nodiscard]] std::uint8_t operator[](std::size_t i) const { return data_[i]; }

  /// Non-owning view over the slice.
  [[nodiscard]] BytesView view() const { return {data_, size_}; }
  operator BytesView() const { return view(); }  // NOLINT

  /// A sub-slice sharing this buffer's control block (no copy). `offset`
  /// and `len` are clamped to the slice bounds.
  [[nodiscard]] SharedBytes slice(std::size_t offset, std::size_t len) const {
    SharedBytes out;
    if (offset > size_) offset = size_;
    if (len > size_ - offset) len = size_ - offset;
    out.owner_ = owner_;
    out.data_ = data_ + offset;
    out.size_ = len;
    return out;
  }

  /// The tail of the slice from `offset` (no copy).
  [[nodiscard]] SharedBytes slice(std::size_t offset) const {
    return slice(offset, size_);
  }

  /// Materialises an independent Bytes copy (tests, persistence).
  [[nodiscard]] Bytes to_bytes() const { return Bytes(begin(), end()); }

  /// True when both views share the same owning buffer (aliasing check).
  [[nodiscard]] bool shares_buffer_with(const SharedBytes& other) const {
    return owner_ != nullptr && owner_ == other.owner_;
  }

  /// Number of SharedBytes currently referencing the owning buffer (0 for a
  /// default-constructed view). Approximate under concurrent modification,
  /// exact at quiescence — the refcount-balance assertions in the SPSC ring
  /// tests rely on the latter.
  [[nodiscard]] long owner_refs() const { return owner_ ? owner_.use_count() : 0; }

  /// Content equality (not identity) — keeps EXPECT_EQ against Bytes and
  /// other SharedBytes working across the test suite.
  friend bool operator==(const SharedBytes& a, const SharedBytes& b) {
    return a.size_ == b.size_ &&
           (a.size_ == 0 || std::memcmp(a.data_, b.data_, a.size_) == 0);
  }
  friend bool operator==(const SharedBytes& a, const Bytes& b) {
    return a.size_ == b.size() &&
           (a.size_ == 0 || std::memcmp(a.data_, b.data(), a.size_) == 0);
  }
  friend bool operator==(const Bytes& a, const SharedBytes& b) { return b == a; }
  friend bool operator<(const SharedBytes& a, const SharedBytes& b) {
    return std::lexicographical_compare(a.begin(), a.end(), b.begin(), b.end());
  }

 private:
  std::shared_ptr<const Bytes> owner_;
  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace ftcorba
