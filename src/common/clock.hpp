// clock.hpp — simulated time, Lamport clocks and the synchronized-clock
// alternative the paper mentions (§6: "Better performance can be achieved
// through the use of clock synchronization software, or synchronized
// physical clocks").
#pragma once

#include <algorithm>
#include <cstdint>

#include "common/ids.hpp"

namespace ftcorba {

/// A point in (simulated or real) time, in nanoseconds since an arbitrary
/// epoch. Signed so durations/differences are natural.
using TimePoint = std::int64_t;
/// A duration in nanoseconds.
using Duration = std::int64_t;

constexpr Duration kNanosecond = 1;
constexpr Duration kMicrosecond = 1000 * kNanosecond;
constexpr Duration kMillisecond = 1000 * kMicrosecond;
constexpr Duration kSecond = 1000 * kMillisecond;

/// Converts nanoseconds to (fractional) milliseconds for reporting.
[[nodiscard]] constexpr double to_ms(Duration d) { return static_cast<double>(d) / 1e6; }
/// Converts nanoseconds to (fractional) microseconds for reporting.
[[nodiscard]] constexpr double to_us(Duration d) { return static_cast<double>(d) / 1e3; }

/// A Lamport logical clock (§6). `tick()` stamps an outgoing message;
/// `witness(t)` advances the clock past any received or sent timestamp, so
/// the clock is always greater than every timestamp seen.
class LamportClock {
 public:
  /// Returns a fresh timestamp strictly greater than every previous
  /// timestamp issued or witnessed by this clock.
  [[nodiscard]] Timestamp tick() { return ++now_; }

  /// Observes a timestamp from a received message; the next tick() will be
  /// strictly greater than it.
  void witness(Timestamp t) { now_ = std::max(now_, t); }

  /// The greatest timestamp issued or witnessed so far.
  [[nodiscard]] Timestamp latest() const { return now_; }

 private:
  Timestamp now_{0};
};

/// Timestamp source abstraction: either pure Lamport (default) or derived
/// from a synchronized physical clock with a bounded skew (the paper's GPS
/// option). Both satisfy the Lamport property (monotone, advanced past
/// every witnessed timestamp); the synchronized variant additionally tracks
/// real time, which shrinks the ordering wait (bench E8 measures this).
class TimestampSource {
 public:
  enum class Mode : std::uint8_t {
    kLamport,       ///< Counter-only Lamport clock.
    kSynchronized,  ///< Timestamps derived from (skewed) physical time.
  };

  explicit TimestampSource(Mode mode = Mode::kLamport, Duration skew = 0)
      : mode_(mode), skew_(skew) {}

  /// Stamps an outgoing message. For kSynchronized the result is
  /// max(previous + 1, physical-now + skew) so it is simultaneously a valid
  /// Lamport timestamp and close to real time.
  [[nodiscard]] Timestamp tick(TimePoint now) {
    if (mode_ == Mode::kSynchronized) {
      const auto phys = static_cast<Timestamp>(std::max<TimePoint>(0, now + skew_));
      last_ = std::max(last_ + 1, phys);
    } else {
      last_ += 1;
    }
    return last_;
  }

  /// Observes a received timestamp (Lamport advance rule).
  void witness(Timestamp t) { last_ = std::max(last_, t); }

  /// The greatest timestamp issued or witnessed so far.
  [[nodiscard]] Timestamp latest() const { return last_; }

  [[nodiscard]] Mode mode() const { return mode_; }

 private:
  Mode mode_;
  Duration skew_;
  Timestamp last_{0};
};

}  // namespace ftcorba
