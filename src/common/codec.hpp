// codec.hpp — bounds-checked binary writer/reader with selectable byte order.
//
// FTMP message bodies are encoded in the sender's native byte order; the
// FTMP header carries a `byte order` flag (§3.2) so receivers can decode
// either endianness. Writer/Reader therefore take the byte order at
// construction.
#pragma once

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>

#include "common/bytes.hpp"

namespace ftcorba {

/// Byte order of an encoded buffer. Matches the FTMP header flag:
/// true == little endian in the header encoding.
enum class ByteOrder : std::uint8_t { kBig = 0, kLittle = 1 };

/// Returns this host's native byte order.
[[nodiscard]] inline ByteOrder native_byte_order() {
  const std::uint16_t probe = 1;
  std::uint8_t first;
  std::memcpy(&first, &probe, 1);
  return first == 1 ? ByteOrder::kLittle : ByteOrder::kBig;
}

/// Thrown by Reader on truncated or malformed input. Protocol layers catch
/// this at the datagram boundary and drop the datagram (never crash on a
/// hostile/corrupt packet).
class CodecError : public std::runtime_error {
 public:
  explicit CodecError(const std::string& what) : std::runtime_error(what) {}
};

/// Appends fixed-width integers, byte blocks and length-prefixed strings to
/// a growable buffer in the configured byte order.
class Writer {
 public:
  explicit Writer(ByteOrder order = ByteOrder::kBig) : order_(order) {}

  /// The byte order this writer encodes multi-byte integers in.
  [[nodiscard]] ByteOrder order() const { return order_; }

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) { put_int(v); }
  void u32(std::uint32_t v) { put_int(v); }
  void u64(std::uint64_t v) { put_int(v); }
  void i64(std::int64_t v) { put_int(static_cast<std::uint64_t>(v)); }

  /// Raw bytes, no length prefix.
  void raw(BytesView b) { buf_.insert(buf_.end(), b.begin(), b.end()); }

  /// u32 length prefix followed by the bytes.
  void blob(BytesView b) {
    u32(static_cast<std::uint32_t>(b.size()));
    raw(b);
  }

  /// u32 length prefix followed by UTF-8 bytes (no NUL terminator).
  void str(std::string_view s) {
    u32(static_cast<std::uint32_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  /// Current encoded size in bytes.
  [[nodiscard]] std::size_t size() const { return buf_.size(); }

  /// Overwrites a previously-written u32 at `offset` (e.g. to patch a
  /// message-size field once the full body length is known).
  void patch_u32(std::size_t offset, std::uint32_t v) {
    if (offset + 4 > buf_.size()) throw CodecError("patch_u32 out of range");
    for (int i = 0; i < 4; ++i) buf_[offset + i] = byte_at(v, i);
  }

  /// Consumes the writer, returning the encoded buffer.
  [[nodiscard]] Bytes take() && { return std::move(buf_); }

  /// Copies out the buffer (writer remains usable).
  [[nodiscard]] const Bytes& bytes() const { return buf_; }

 private:
  template <typename T>
  void put_int(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) buf_.push_back(byte_at(v, i));
  }
  template <typename T>
  [[nodiscard]] std::uint8_t byte_at(T v, std::size_t i) const {
    const std::size_t shift =
        order_ == ByteOrder::kBig ? (sizeof(T) - 1 - i) * 8 : i * 8;
    return static_cast<std::uint8_t>((v >> shift) & 0xFF);
  }

  ByteOrder order_;
  Bytes buf_;
};

/// Sequential bounds-checked decoder over a byte view. Throws CodecError on
/// any out-of-range read.
class Reader {
 public:
  explicit Reader(BytesView data, ByteOrder order = ByteOrder::kBig)
      : data_(data), order_(order) {}

  /// Switches decode byte order (used after reading the FTMP header flag).
  void set_order(ByteOrder order) { order_ = order; }
  [[nodiscard]] ByteOrder order() const { return order_; }

  [[nodiscard]] std::uint8_t u8() { return take_byte(); }
  [[nodiscard]] std::uint16_t u16() { return get_int<std::uint16_t>(); }
  [[nodiscard]] std::uint32_t u32() { return get_int<std::uint32_t>(); }
  [[nodiscard]] std::uint64_t u64() { return get_int<std::uint64_t>(); }
  [[nodiscard]] std::int64_t i64() { return static_cast<std::int64_t>(get_int<std::uint64_t>()); }

  /// Reads exactly `n` raw bytes.
  [[nodiscard]] Bytes raw(std::size_t n) {
    require(n);
    Bytes out(data_.begin() + pos_, data_.begin() + pos_ + n);
    pos_ += n;
    return out;
  }

  /// Reads a u32 length prefix then that many bytes.
  [[nodiscard]] Bytes blob() {
    const std::uint32_t n = u32();
    if (n > remaining()) throw CodecError("blob length exceeds buffer");
    return raw(n);
  }

  /// Reads a u32 length prefix then that many UTF-8 bytes as a string.
  [[nodiscard]] std::string str() {
    const std::uint32_t n = u32();
    if (n > remaining()) throw CodecError("string length exceeds buffer");
    require(n);
    std::string out(reinterpret_cast<const char*>(data_.data() + pos_), n);
    pos_ += n;
    return out;
  }

  /// Bytes not yet consumed.
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  /// Current read offset.
  [[nodiscard]] std::size_t position() const { return pos_; }
  /// True when every byte has been consumed.
  [[nodiscard]] bool exhausted() const { return pos_ == data_.size(); }

  /// View over the unconsumed tail (e.g. an encapsulated GIOP payload).
  [[nodiscard]] BytesView rest() const { return data_.subspan(pos_); }

  /// Skips `n` bytes.
  void skip(std::size_t n) {
    require(n);
    pos_ += n;
  }

 private:
  void require(std::size_t n) const {
    if (pos_ + n > data_.size()) {
      throw CodecError("read past end: need " + std::to_string(n) + " at " +
                       std::to_string(pos_) + " of " + std::to_string(data_.size()));
    }
  }
  [[nodiscard]] std::uint8_t take_byte() {
    require(1);
    return data_[pos_++];
  }
  template <typename T>
  [[nodiscard]] T get_int() {
    require(sizeof(T));
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      const std::size_t shift =
          order_ == ByteOrder::kBig ? (sizeof(T) - 1 - i) * 8 : i * 8;
      v |= static_cast<T>(static_cast<T>(data_[pos_ + i]) << shift);
    }
    pos_ += sizeof(T);
    return v;
  }

  BytesView data_;
  ByteOrder order_;
  std::size_t pos_{0};
};

}  // namespace ftcorba
