// bytes.cpp — thread-local buffer freelists and the process-global
// allocation statistics behind SharedBytes (see bytes.hpp, docs/BUFFERS.md).
#include "common/bytes.hpp"

#include <atomic>

#include "common/metrics.hpp"

namespace ftcorba {

namespace {

// Process-global, always compiled: the benches read these even when the
// metrics registry is compiled out (FTMP_METRICS=OFF).
std::atomic<std::uint64_t> g_fresh{0};
std::atomic<std::uint64_t> g_hits{0};
std::atomic<std::uint64_t> g_copied{0};

// Mirrors into the metrics registry (no-op handles when disabled).
struct Instruments {
  metrics::CounterHandle fresh = metrics::counter(
      "ftmp_stack_alloc_buffers_total",
      "Owned datagram buffers materialised (heap allocations on the path)",
      "buffers", "stack");
  metrics::CounterHandle pool_hits = metrics::counter(
      "ftmp_stack_alloc_pool_hits_total",
      "Datagram buffers served from a thread-local freelist", "buffers",
      "stack");
  metrics::CounterHandle copied = metrics::counter(
      "ftmp_stack_alloc_copied_bytes_total",
      "Bytes memcpy'd into owned buffers (pool copies, reassembly, patches)",
      "bytes", "stack");
};

Instruments& instruments() {
  static Instruments i;
  return i;
}

// Per-thread freelist of recycled vectors. `tl_list` is nulled before the
// list is destroyed so releases racing with thread teardown fall back to a
// plain delete instead of touching a dead freelist.
struct Freelist;
thread_local Freelist* tl_list = nullptr;

struct Freelist {
  static constexpr std::size_t kMaxBuffers = 64;
  std::vector<Bytes> free;
  Freelist() { tl_list = this; }
  ~Freelist() { tl_list = nullptr; }
};

// Accessor guarantees construction on first acquire in each thread (a
// namespace-scope thread_local's dynamic initializer is only guaranteed to
// run once the variable itself is odr-used).
Freelist& freelist() {
  thread_local Freelist fl;
  return fl;
}

void note_fresh() {
  g_fresh.fetch_add(1, std::memory_order_relaxed);
  instruments().fresh.add();
}

void note_hit() {
  g_hits.fetch_add(1, std::memory_order_relaxed);
  instruments().pool_hits.add();
}

void note_copied(std::size_t n) {
  g_copied.fetch_add(n, std::memory_order_relaxed);
  instruments().copied.add(n);
}

void pool_release(Bytes&& buf) {
  Freelist* list = tl_list;
  if (list == nullptr || list->free.size() >= Freelist::kMaxBuffers) return;
  buf.clear();
  list->free.push_back(std::move(buf));
}

}  // namespace

AllocStats alloc_stats() {
  AllocStats s;
  s.fresh_buffers = g_fresh.load(std::memory_order_relaxed);
  s.pool_hits = g_hits.load(std::memory_order_relaxed);
  s.copied_bytes = g_copied.load(std::memory_order_relaxed);
  return s;
}

void alloc_stats_reset() {
  g_fresh.store(0, std::memory_order_relaxed);
  g_hits.store(0, std::memory_order_relaxed);
  g_copied.store(0, std::memory_order_relaxed);
}

Bytes pool_acquire(std::size_t size) {
  Freelist* list = &freelist();
  if (!list->free.empty()) {
    Bytes buf = std::move(list->free.back());
    list->free.pop_back();
    if (buf.capacity() >= size) {
      note_hit();
    } else {
      note_fresh();  // resize below reallocates
    }
    buf.resize(size);
    return buf;
  }
  note_fresh();
  Bytes buf;
  buf.resize(size);
  return buf;
}

SharedBytes SharedBytes::copy_of(BytesView src) {
  Bytes buf = pool_acquire(src.size());
  if (!src.empty()) std::memcpy(buf.data(), src.data(), src.size());
  note_copied(src.size());
  return share_pooled(std::move(buf));
}

SharedBytes SharedBytes::share_pooled(Bytes&& buf) {
  SharedBytes out;
  out.owner_ = std::shared_ptr<const Bytes>(
      new Bytes(std::move(buf)),
      [](const Bytes* p) {
        pool_release(std::move(*const_cast<Bytes*>(p)));
        delete p;
      });
  out.data_ = out.owner_->data();
  out.size_ = out.owner_->size();
  return out;
}

namespace detail {
void note_adopted_buffer() { note_fresh(); }
void note_copied_bytes(std::size_t n) { note_copied(n); }
}  // namespace detail

}  // namespace ftcorba
