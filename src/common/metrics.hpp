// metrics.hpp — protocol-wide observability: a process-global registry of
// counters, gauges and fixed-bucket latency histograms, plus a structured
// trace-event ring buffer keyed off the ftmp/events.hpp event kinds.
//
// Design rules (docs/METRICS.md is the user-facing reference):
//
//   * Hot path is lock-free. Call sites hold a small value-type handle
//     (CounterHandle / GaugeHandle / HistogramHandle) obtained once at
//     construction time; add()/observe() are relaxed atomic operations.
//     Registration and snapshot/render take a mutex (cold paths only).
//   * Instruments are identified by name and shared: every Rmp instance in
//     the process increments the same ftmp_rmp_* counters, so a snapshot
//     aggregates a whole simulated fleet (exactly what the benches report).
//   * Zero cost when disabled. Building with FTMP_METRICS=OFF (CMake)
//     defines FTCORBA_METRICS_ENABLED=0 and every API below becomes an
//     inline no-op; the registry implementation (metrics.cpp) compiles to an
//     empty TU. tools/check_metrics_off.cmake asserts this with nm.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.hpp"

#ifndef FTCORBA_METRICS_ENABLED
#define FTCORBA_METRICS_ENABLED 1
#endif

#if FTCORBA_METRICS_ENABLED
#include <atomic>
#endif

namespace ftcorba::metrics {

/// Instrument kinds, Prometheus-compatible.
enum class Type : std::uint8_t { kCounter, kGauge, kHistogram };

/// Trace-event kinds. The first six mirror the ftmp::Event variants
/// (ftmp/events.hpp) one for one; the rest mark protocol-internal moments
/// the upward event stream cannot see.
enum class TraceKind : std::uint8_t {
  kDelivered = 0,          ///< DeliveredMessage: a = source id, b = seq
  kMembershipChanged,      ///< MembershipChanged: a = member count, b = reason
  kFaultReport,            ///< FaultReport: a = convicted id
  kSelfEvicted,            ///< SelfEvicted
  kConnectionEstablished,  ///< ConnectionEstablished: a = bound group id
  kConnectionRequested,    ///< ConnectionRequested: a = client processors
  kNackSent,               ///< RMP RetransmitRequest out: a = missing-from, b = start seq
  kRetransmitServed,       ///< RMP retransmission out: a = bytes
  kHeartbeatSent,          ///< idle Heartbeat multicast
  kSuspectSent,            ///< PGMP Suspect multicast: a = suspect count
  kMembershipSent,         ///< PGMP Membership proposal multicast: a = proposal size
  kOooDropped,             ///< RMP out-of-order buffer cap drop: a = source, b = seq
  kFlowQueueHigh,          ///< flow send queue crossed the high watermark: a = depth
  kFlowQueueLow,           ///< flow send queue fell below the low watermark: a = depth
  kFlowLagWarn,            ///< member stability lag past flow_lag_warn: a = member, b = lag
  kFlowEvictReport,        ///< member reported to PGMP past flow_lag_evict: a = member, b = lag
  kFlowSendDropped,        ///< send rejected with the flow queue at capacity: a = depth
};

[[nodiscard]] inline const char* to_string(TraceKind k) {
  switch (k) {
    case TraceKind::kDelivered: return "delivered";
    case TraceKind::kMembershipChanged: return "membership_changed";
    case TraceKind::kFaultReport: return "fault_report";
    case TraceKind::kSelfEvicted: return "self_evicted";
    case TraceKind::kConnectionEstablished: return "connection_established";
    case TraceKind::kConnectionRequested: return "connection_requested";
    case TraceKind::kNackSent: return "nack_sent";
    case TraceKind::kRetransmitServed: return "retransmit_served";
    case TraceKind::kHeartbeatSent: return "heartbeat_sent";
    case TraceKind::kSuspectSent: return "suspect_sent";
    case TraceKind::kMembershipSent: return "membership_sent";
    case TraceKind::kOooDropped: return "ooo_dropped";
    case TraceKind::kFlowQueueHigh: return "flow_queue_high";
    case TraceKind::kFlowQueueLow: return "flow_queue_low";
    case TraceKind::kFlowLagWarn: return "flow_lag_warn";
    case TraceKind::kFlowEvictReport: return "flow_evict_report";
    case TraceKind::kFlowSendDropped: return "flow_send_dropped";
  }
  return "?";
}

/// One structured trace record (16 + 2*8 bytes of payload words; the a/b
/// meanings per kind are listed above).
struct TraceEvent {
  TimePoint at = 0;
  std::uint32_t processor = 0;
  std::uint32_t group = 0;
  TraceKind kind{};
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};

/// One instrument's value as captured by snapshot(). For histograms,
/// `buckets[i]` counts observations in (bounds[i-1], bounds[i]] and
/// buckets.back() counts the overflow (+Inf) bucket, so
/// buckets.size() == bounds.size() + 1 and count == sum of buckets.
struct Sample {
  std::string name;
  std::string help;
  std::string unit;
  std::string layer;
  Type type{};
  std::uint64_t counter = 0;
  std::int64_t gauge = 0;
  std::vector<double> bounds;
  std::vector<std::uint64_t> buckets;
  std::uint64_t count = 0;
  double sum = 0.0;
};

/// Default fixed bucket boundaries for latency histograms, in milliseconds.
[[nodiscard]] inline std::vector<double> latency_buckets_ms() {
  return {0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 5000};
}

/// Default boundaries for Lamport-timestamp-gap histograms (unit: timestamp
/// ticks with Lamport clocks, nanoseconds with synchronized clocks).
[[nodiscard]] inline std::vector<double> timestamp_gap_buckets() {
  return {1, 2, 5, 10, 25, 50, 100, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9};
}

#if FTCORBA_METRICS_ENABLED

namespace detail {
struct CounterCell {
  std::atomic<std::uint64_t> v{0};
};
struct GaugeCell {
  std::atomic<std::int64_t> v{0};
};
struct HistogramCell {
  explicit HistogramCell(std::vector<double> b)
      : bounds(std::move(b)), buckets(bounds.size() + 1) {}
  const std::vector<double> bounds;              // ascending upper bounds
  std::vector<std::atomic<std::uint64_t>> buckets;  // bounds.size() + 1 (+Inf)
  std::atomic<std::uint64_t> count{0};
  std::atomic<double> sum{0.0};
};
}  // namespace detail

/// Value-type handle to a registered counter; cheap to copy, never owns.
class CounterHandle {
 public:
  CounterHandle() = default;
  explicit CounterHandle(detail::CounterCell* c) : c_(c) {}
  void add(std::uint64_t n = 1) {
    if (c_) c_->v.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const {
    return c_ ? c_->v.load(std::memory_order_relaxed) : 0;
  }

 private:
  detail::CounterCell* c_ = nullptr;
};

/// Value-type handle to a registered gauge. Gauges are process-wide
/// aggregates: instances contribute deltas via add() (or set() when there
/// is a single writer).
class GaugeHandle {
 public:
  GaugeHandle() = default;
  explicit GaugeHandle(detail::GaugeCell* g) : g_(g) {}
  void add(std::int64_t delta) {
    if (g_) g_->v.fetch_add(delta, std::memory_order_relaxed);
  }
  void set(std::int64_t v) {
    if (g_) g_->v.store(v, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const {
    return g_ ? g_->v.load(std::memory_order_relaxed) : 0;
  }

 private:
  detail::GaugeCell* g_ = nullptr;
};

/// Value-type handle to a registered fixed-bucket histogram.
class HistogramHandle {
 public:
  HistogramHandle() = default;
  explicit HistogramHandle(detail::HistogramCell* h) : h_(h) {}
  void observe(double v) {
    if (!h_) return;
    std::size_t i = 0;
    while (i < h_->bounds.size() && v > h_->bounds[i]) ++i;
    h_->buckets[i].fetch_add(1, std::memory_order_relaxed);
    h_->count.fetch_add(1, std::memory_order_relaxed);
    h_->sum.fetch_add(v, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t count() const {
    return h_ ? h_->count.load(std::memory_order_relaxed) : 0;
  }
  [[nodiscard]] double sum() const {
    return h_ ? h_->sum.load(std::memory_order_relaxed) : 0.0;
  }

 private:
  detail::HistogramCell* h_ = nullptr;
};

/// Registers (or finds) a counter. Re-registering an existing name returns
/// a handle to the same instrument; a name already registered under a
/// different type yields an inert handle (never crashes a hot path).
CounterHandle counter(std::string_view name, std::string_view help,
                      std::string_view unit, std::string_view layer);
GaugeHandle gauge(std::string_view name, std::string_view help,
                  std::string_view unit, std::string_view layer);
HistogramHandle histogram(std::string_view name, std::string_view help,
                          std::string_view unit, std::string_view layer,
                          std::vector<double> bounds);

/// Zeroes every registered instrument (instruments stay registered; handles
/// stay valid). Benches call this between workload rows.
void reset_all();

/// Consistent point-in-time copy of every registered instrument, in
/// registration order.
[[nodiscard]] std::vector<Sample> snapshot();

/// Prometheus text exposition format (HELP/TYPE + values, histograms with
/// cumulative le="..." buckets).
[[nodiscard]] std::string render_prometheus();

/// JSON array of instrument objects (one per Sample).
[[nodiscard]] std::string render_json();

/// Appends a structured event to the global trace ring (fixed capacity;
/// oldest entries are overwritten).
void trace(const TraceEvent& e);

/// The retained trace events, oldest first.
[[nodiscard]] std::vector<TraceEvent> trace_events();

/// Discards all retained trace events.
void trace_clear();

/// JSON array of the retained trace events.
[[nodiscard]] std::string render_trace_json();

#else  // !FTCORBA_METRICS_ENABLED — inline no-op stubs, same API surface.

class CounterHandle {
 public:
  void add(std::uint64_t = 1) {}
  [[nodiscard]] std::uint64_t value() const { return 0; }
};

class GaugeHandle {
 public:
  void add(std::int64_t) {}
  void set(std::int64_t) {}
  [[nodiscard]] std::int64_t value() const { return 0; }
};

class HistogramHandle {
 public:
  void observe(double) {}
  [[nodiscard]] std::uint64_t count() const { return 0; }
  [[nodiscard]] double sum() const { return 0.0; }
};

inline CounterHandle counter(std::string_view, std::string_view,
                             std::string_view, std::string_view) {
  return {};
}
inline GaugeHandle gauge(std::string_view, std::string_view, std::string_view,
                         std::string_view) {
  return {};
}
inline HistogramHandle histogram(std::string_view, std::string_view,
                                 std::string_view, std::string_view,
                                 std::vector<double>) {
  return {};
}
inline void reset_all() {}
[[nodiscard]] inline std::vector<Sample> snapshot() { return {}; }
[[nodiscard]] inline std::string render_prometheus() { return {}; }
[[nodiscard]] inline std::string render_json() { return {}; }
inline void trace(const TraceEvent&) {}
[[nodiscard]] inline std::vector<TraceEvent> trace_events() { return {}; }
inline void trace_clear() {}
[[nodiscard]] inline std::string render_trace_json() { return {}; }

#endif  // FTCORBA_METRICS_ENABLED

}  // namespace ftcorba::metrics
