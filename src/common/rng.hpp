// rng.hpp — deterministic, seedable random number generation for the
// simulated network and workload generators. We keep our own small PRNG
// (xoshiro256**) rather than std::mt19937 so that streams are cheap to
// split per-link and identical across standard-library versions — test and
// bench results must be bit-reproducible from a seed.
#pragma once

#include <cstdint>

namespace ftcorba {

/// SplitMix64 — used to expand a single seed into xoshiro state and to
/// derive independent per-link sub-streams.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** 1.0 — fast, high-quality, tiny-state PRNG.
class Rng {
 public:
  /// Seeds the generator; equal seeds yield identical streams on every
  /// platform.
  explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL) { reseed(seed); }

  /// Re-initializes the stream from a new seed.
  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : s_) word = splitmix64(sm);
  }

  /// Derives an independent generator for a sub-stream (e.g. one per
  /// network link), so adding a link never perturbs other links' draws.
  [[nodiscard]] Rng split(std::uint64_t stream_id) const {
    std::uint64_t sm = s_[0] ^ (s_[3] + 0x9e3779b97f4a7c15ULL * (stream_id + 1));
    return Rng(splitmix64(sm));
  }

  /// Next 64 uniformly random bits.
  [[nodiscard]] std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound) (bound must be > 0). Uses rejection to
  /// avoid modulo bias.
  [[nodiscard]] std::uint64_t next_below(std::uint64_t bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = next_u64();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t next_in(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Bernoulli draw: true with probability p.
  [[nodiscard]] bool chance(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return next_double() < p;
  }

  /// Exponentially distributed duration with the given mean (for Poisson
  /// arrival processes in workload generators).
  [[nodiscard]] double next_exponential(double mean) {
    double u;
    do {
      u = next_double();
    } while (u <= 0.0);
    return -mean * log_approx(u);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  // Natural log via the standard library; isolated so the header stays light.
  [[nodiscard]] static double log_approx(double u);

  std::uint64_t s_[4]{};
};

}  // namespace ftcorba
