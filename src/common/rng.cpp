#include "common/rng.hpp"

#include <cmath>

namespace ftcorba {

double Rng::log_approx(double u) { return std::log(u); }

}  // namespace ftcorba
