// state_transfer.hpp — post-heal state reconciliation layered above PGMP
// view installs (docs/RECOVERY.md).
//
// The paper's §7 virtual-synchrony install points give every surviving
// member a common cut: when an install admits a new or rejoining member,
// each survivor snapshots its application state AT the install event, and
// the smallest-id surviving holder (the donor) streams the snapshot to the
// joiner as chunked, request-clocked StateChunk messages over the existing
// reliable channel. The joiner buffers concurrently ordered messages during
// the transfer and applies snapshot -> buffered suffix -> live traffic, so
// catch-up costs O(snapshot + window), not O(run length).
//
// Robustness to the protocol's own faults:
//   - chunks are idempotent by (view_ts, chunk_seq); the joiner's cumulative
//     StateRequest doubles as the resume offset, so a donor crash just
//     re-elects the next surviving holder and resumes mid-stream;
//   - if no holder survives a later view change, the joiner re-anchors the
//     whole transfer at the new install's cut (survivors snapshot at every
//     install while anyone is still catching up);
//   - after every heal members exchange rolling state digests (anti-entropy):
//     equal fingerprints (cut positions) must carry equal digests.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "common/bytes.hpp"
#include "common/clock.hpp"
#include "common/ids.hpp"
#include "common/metrics.hpp"
#include "ft/message_log.hpp"
#include "ft/replication.hpp"
#include "ftmp/config.hpp"
#include "ftmp/events.hpp"
#include "ftmp/stack.hpp"

namespace ftcorba::ft {

/// Application state that can be checkpointed at a virtual-synchrony cut
/// and restored wholesale on a catching-up member.
class Checkpointable {
 public:
  virtual ~Checkpointable() = default;

  /// Serializes the complete application state. Must be deterministic:
  /// members at the same cut produce byte-identical snapshots.
  [[nodiscard]] virtual Bytes snapshot() const = 0;

  /// Replaces the state from a snapshot.
  virtual void restore(BytesView snapshot) = 0;
};

/// FNV-1a/64 over a byte range (snapshot and payload hashing).
[[nodiscard]] std::uint64_t state_fnv1a64(BytesView data);

/// One step of the rolling, order-sensitive state digest: folds an applied
/// message (source, seq, payload hash) into the chain. Members that applied
/// the same messages in the same order hold the same digest.
[[nodiscard]] std::uint64_t state_digest_mix(std::uint64_t digest,
                                             std::uint32_t source, SeqNum seq,
                                             std::uint64_t payload_hash);

/// Counters pinned by the integration tests and surfaced by chaos campaigns.
struct StateTransferStats {
  std::uint64_t transfers_completed = 0;
  std::uint64_t transfers_resumed = 0;    ///< donor re-elected, chunk offset kept
  std::uint64_t transfers_restarted = 0;  ///< re-anchored at a newer view cut
  std::uint64_t snapshots_taken = 0;
  std::uint64_t chunks_sent = 0;
  std::uint64_t chunks_received = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;       ///< snapshot bytes this joiner received
  std::uint64_t messages_buffered = 0;    ///< ordered messages parked during transfer
  std::uint64_t messages_replayed = 0;    ///< buffered suffix applied after restore
  std::uint64_t snapshot_verify_failures = 0;
  std::uint64_t digest_mismatches = 0;    ///< anti-entropy alarms observed
};

/// Drives state transfer for one member of one processor group. The owner
/// feeds every upward Stack event through on_event (in take_events order —
/// that order IS the total order the cut is defined on) and calls tick
/// alongside the stack's own ticks. Regular deliveries reach the
/// application only through this manager: live and replayed messages go
/// through the ApplyFn; messages ordered during a transfer are buffered.
class StateTransferManager {
 public:
  /// Applies one delivered message to the application (servant apply,
  /// message-log append, trace records...). Called for live traffic and,
  /// after a snapshot restore, for the buffered suffix.
  using ApplyFn = std::function<void(TimePoint, const ftmp::DeliveredMessage&)>;

  /// Observes every StateDigest this member multicasts (fingerprint,
  /// digest) — the chaos trace/checker tap.
  using DigestFn = std::function<void(TimePoint, std::uint64_t fingerprint,
                                      std::uint64_t digest)>;

  StateTransferManager(ProcessorId self, ProcessorGroupId group,
                       ftmp::Stack& stack, const ftmp::Config& config,
                       Checkpointable& state, ApplyFn apply);

  void set_digest_hook(DigestFn hook) { digest_hook_ = std::move(hook); }

  /// Consumes one upward Stack event (call for every event, in order).
  void on_event(TimePoint now, const ftmp::Event& event);

  /// Timer work: StateRequest retry/resume cadence, snapshot TTL GC,
  /// periodic anti-entropy digests.
  void tick(TimePoint now);

  /// Multicasts a StateDigest immediately (the periodic tick cadence does
  /// this on its own; callers use this to pin a final digest exchange at a
  /// known point, e.g. the chaos engine's end-of-campaign probe).
  void publish_digest(TimePoint now) { send_digest(now); }

  /// False while this member is catching up (snapshot transfer + suffix
  /// replay not yet finished).
  [[nodiscard]] bool caught_up() const { return !catchup_.has_value(); }

  /// Rolling order-sensitive digest over every message applied here.
  [[nodiscard]] std::uint64_t digest() const { return digest_; }

  /// Position identifier: hash over the sorted per-source applied-seq
  /// high-water marks (zero entries excluded).
  [[nodiscard]] std::uint64_t fingerprint() const;

  [[nodiscard]] const StateTransferStats& stats() const { return stats_; }

  /// Snapshots currently retained for catching-up members (tests).
  [[nodiscard]] std::size_t retained_snapshots() const { return snapshots_.size(); }

 private:
  /// A snapshot retained on a (potential) donor, keyed by the install
  /// timestamp of its cut.
  struct Snapshot {
    Bytes bytes;
    std::uint64_t snapshot_digest = 0;
    std::uint64_t cut_digest = 0;
    std::vector<ftmp::SourceSeq> cut_seqs;
    std::vector<ProcessorId> holders;   ///< survivors at the cut (sorted)
    std::set<std::uint32_t> interested; ///< joiners not yet completed
    TimePoint created_at = 0;
    std::uint32_t total_chunks = 1;
  };

  /// This member's own catch-up, while it is the joiner.
  struct CatchUp {
    Timestamp view_ts = 0;               ///< anchor: admitting install's ts
    std::vector<ProcessorId> holders;    ///< live snapshot holders
    std::vector<std::optional<Bytes>> chunks;
    std::uint32_t total_chunks = 0;      ///< 0 until the first chunk arrives
    std::uint32_t next_chunk = 0;        ///< cumulative: first chunk missing
    std::uint32_t last_requested = 0;    ///< next_chunk of the last request
    std::uint64_t snapshot_digest = 0;
    std::uint64_t cut_digest = 0;
    std::vector<ftmp::SourceSeq> cut_seqs;
    TimePoint last_request_at = -1;
    std::deque<ftmp::Event> buffered;    ///< ordered events parked until restore
  };

  void apply_one(TimePoint now, const ftmp::DeliveredMessage& msg);
  void prune_for_install(const ftmp::MembershipChanged& change);
  void on_install(TimePoint now, const ftmp::MembershipChanged& change);
  void begin_catchup(TimePoint now, const ftmp::MembershipChanged& change);
  void take_snapshot(TimePoint now, const ftmp::MembershipChanged& change);
  void on_state(TimePoint now, const ftmp::StateMessage& msg);
  void on_request(TimePoint now, ProcessorId from, const ftmp::StateRequestBody& req);
  void on_chunk(TimePoint now, const ftmp::StateChunkBody& chunk);
  void on_peer_digest(TimePoint now, ProcessorId from, const ftmp::StateDigestBody& body);
  void maybe_finish(TimePoint now);
  void send_request(TimePoint now);
  void send_digest(TimePoint now);
  [[nodiscard]] bool is_donor(const Snapshot& snap) const;

  ProcessorId self_;
  ProcessorGroupId group_;
  ftmp::Stack& stack_;
  ftmp::Config config_;
  Checkpointable& state_;
  ApplyFn apply_;
  DigestFn digest_hook_;

  std::map<std::uint64_t, Snapshot> snapshots_;  ///< view_ts -> snapshot
  std::set<std::uint32_t> catching_up_;          ///< members mid-transfer
  std::optional<CatchUp> catchup_;
  std::map<std::uint32_t, SeqNum> applied_hw_;   ///< source -> applied seq hw
  std::uint64_t digest_ = 0;
  std::vector<ProcessorId> members_;             ///< current membership
  TimePoint last_digest_sent_ = -1;
  bool live_ = false;  ///< a membership is installed and we are caught up

  StateTransferStats stats_;

  struct Instruments {
    metrics::CounterHandle transfers_completed;
    metrics::CounterHandle transfers_resumed;
    metrics::CounterHandle transfers_restarted;
    metrics::CounterHandle chunks_sent;
    metrics::CounterHandle chunk_bytes_sent;
    metrics::CounterHandle messages_replayed;
    metrics::CounterHandle digest_mismatches;
  };
  Instruments metrics_;
};

/// Checkpointable over the replication layer: the deterministic
/// StateMachine's snapshot plus the MessageLog's per-connection request-
/// number watermarks, so a restored replica resumes duplicate suppression
/// and reply matching where the donor left off.
class ReplicaCheckpoint : public Checkpointable {
 public:
  /// `log` may be nullptr (no dedup watermarks carried).
  ReplicaCheckpoint(std::shared_ptr<StateMachine> machine, const MessageLog* log)
      : machine_(std::move(machine)), log_(log) {}

  [[nodiscard]] Bytes snapshot() const override;
  void restore(BytesView snapshot) override;

  /// The per-connection watermarks carried by the last restored snapshot.
  [[nodiscard]] const std::vector<std::pair<ConnectionId, RequestNum>>&
  restored_watermarks() const {
    return restored_watermarks_;
  }

 private:
  std::shared_ptr<StateMachine> machine_;
  const MessageLog* log_;
  std::vector<std::pair<ConnectionId, RequestNum>> restored_watermarks_;
};

}  // namespace ftcorba::ft
