// domain.hpp — fault-tolerance domain bookkeeping: which object groups
// exist, which processors host their replicas, and how connections between
// object groups are identified. This is the directory role of the paper's
// "fault tolerance infrastructure" (played by Eternal in the authors'
// system).
#pragma once

#include <algorithm>
#include <map>
#include <optional>
#include <vector>

#include "common/ids.hpp"
#include "orb/object.hpp"

namespace ftcorba::ft {

/// Descriptor of one object group within a domain.
struct ObjectGroupInfo {
  ObjectGroupId id{};
  std::vector<ProcessorId> replicas;  ///< processors hosting the replicas
  orb::ObjectKey key;                 ///< the object's key within servants
};

/// Directory of one fault-tolerance domain.
class DomainDirectory {
 public:
  DomainDirectory(FtDomainId id, McastAddress domain_address)
      : id_(id), domain_address_(domain_address) {}

  [[nodiscard]] FtDomainId id() const { return id_; }
  [[nodiscard]] McastAddress domain_address() const { return domain_address_; }

  /// Registers (or replaces) an object group.
  void put_group(ObjectGroupInfo info) { groups_[info.id] = std::move(info); }

  /// Looks up an object group.
  [[nodiscard]] const ObjectGroupInfo* group(ObjectGroupId g) const {
    auto it = groups_.find(g);
    return it == groups_.end() ? nullptr : &it->second;
  }

  /// Adds a replica processor to a group's record.
  void add_replica(ObjectGroupId g, ProcessorId p) {
    auto it = groups_.find(g);
    if (it == groups_.end()) return;
    auto& r = it->second.replicas;
    if (std::find(r.begin(), r.end(), p) == r.end()) r.push_back(p);
  }

  /// Removes a replica processor (e.g. after a fault report).
  void remove_replica(ObjectGroupId g, ProcessorId p) {
    auto it = groups_.find(g);
    if (it == groups_.end()) return;
    auto& r = it->second.replicas;
    r.erase(std::remove(r.begin(), r.end(), p), r.end());
  }

  /// A client-side reference to one of this domain's object groups.
  [[nodiscard]] std::optional<orb::GroupObjectRef> make_ref(ObjectGroupId g) const {
    const ObjectGroupInfo* info = group(g);
    if (!info) return std::nullopt;
    return orb::GroupObjectRef{id_, g, domain_address_, info->key};
  }

 private:
  FtDomainId id_;
  McastAddress domain_address_;
  std::map<ObjectGroupId, ObjectGroupInfo> groups_;
};

}  // namespace ftcorba::ft
