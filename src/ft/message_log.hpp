// message_log.hpp — the message log the paper's §4 alludes to ("when
// replaying messages from a log"): records delivered requests/replies per
// logical connection, keyed by the unique ⟨connection id, request number⟩
// pair so a recovering replica can match replies to requests during replay.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "common/bytes.hpp"
#include "common/ids.hpp"
#include "ft/dedup.hpp"

namespace ftcorba::ft {

/// One logged message.
struct LogEntry {
  MessageKind kind{};
  ConnectionId connection{};
  RequestNum request_num = 0;
  Timestamp timestamp = 0;  ///< FTMP delivery timestamp (total order position)
  /// Shares (pins) the delivered buffer — recording a message costs a
  /// refcount bump, not a payload copy.
  SharedBytes giop_message;

  friend bool operator==(const LogEntry&, const LogEntry&) = default;
};

/// In-memory, per-connection ordered log of delivered GIOP messages.
class MessageLog {
 public:
  /// Appends one delivered message.
  void record(LogEntry entry) {
    bytes_ += entry.giop_message.size();
    log_[entry.connection].push_back(std::move(entry));
  }

  /// Everything delivered on `connection` with request number > `after`,
  /// in delivery order. This is the §4 replay: the request number pairs a
  /// logged reply with its request.
  [[nodiscard]] std::vector<LogEntry> replay_since(const ConnectionId& connection,
                                                   RequestNum after) const {
    std::vector<LogEntry> out;
    auto it = log_.find(connection);
    if (it == log_.end()) return out;
    for (const LogEntry& e : it->second) {
      if (e.request_num > after) out.push_back(e);
    }
    return out;
  }

  /// The reply logged for ⟨connection, request_num⟩, if any.
  [[nodiscard]] const LogEntry* find_reply(const ConnectionId& connection,
                                           RequestNum request_num) const {
    auto it = log_.find(connection);
    if (it == log_.end()) return nullptr;
    for (const LogEntry& e : it->second) {
      if (e.request_num == request_num && e.kind == MessageKind::kReply) return &e;
    }
    return nullptr;
  }

  /// Discards entries on `connection` with request number <= `watermark`
  /// (their effects are covered by a snapshot).
  void trim(const ConnectionId& connection, RequestNum watermark) {
    auto it = log_.find(connection);
    if (it == log_.end()) return;
    auto& entries = it->second;
    std::size_t kept = 0;
    for (LogEntry& e : entries) {
      if (e.request_num > watermark) {
        entries[kept++] = std::move(e);
      } else {
        bytes_ -= e.giop_message.size();
      }
    }
    entries.resize(kept);
  }

  /// Per-connection request-number high-water marks (the largest request
  /// number logged on each connection) — the dedup/replay watermarks a
  /// checkpoint carries so a restored replica resumes duplicate suppression
  /// where the donor left off (docs/RECOVERY.md).
  [[nodiscard]] std::vector<std::pair<ConnectionId, RequestNum>> watermarks() const {
    std::vector<std::pair<ConnectionId, RequestNum>> out;
    for (const auto& [conn, entries] : log_) {
      RequestNum hw = 0;
      for (const LogEntry& e : entries) hw = std::max(hw, e.request_num);
      if (hw > 0) out.emplace_back(conn, hw);
    }
    return out;
  }

  /// Total entries retained.
  [[nodiscard]] std::size_t size() const {
    std::size_t n = 0;
    for (const auto& [conn, entries] : log_) n += entries.size();
    return n;
  }

  /// Total payload bytes retained.
  [[nodiscard]] std::size_t bytes() const { return bytes_; }

 private:
  std::map<ConnectionId, std::vector<LogEntry>> log_;
  std::size_t bytes_ = 0;
};

}  // namespace ftcorba::ft
