// persistent_log.hpp — a durable, append-only message log. §4's replay
// ("when replaying messages from a log") is only useful after a restart if
// the log survives the crash; this is the write-ahead file behind
// ft::MessageLog.
//
// Record format (all integers big-endian):
//   magic 'FTLG' | kind u8 | connection (4 x u32) | request num u64 |
//   timestamp u64 | payload length u32 | payload | crc32 of all the above
//
// Recovery reads records until EOF or the first torn/corrupt record
// (classic WAL semantics): everything before the tear is trusted,
// everything after is discarded.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "ft/message_log.hpp"

namespace ftcorba::ft {

/// CRC-32 (IEEE 802.3, reflected) over a byte range.
[[nodiscard]] std::uint32_t crc32(BytesView data);

/// Result of scanning a log file: the intact prefix plus tear diagnostics.
struct LogScan {
  std::vector<LogEntry> entries;
  /// File offset just past the last intact record (the recoverable prefix).
  std::size_t good_bytes = 0;
  /// Torn/corrupt bytes after the last intact record (0 on a clean file).
  std::size_t discarded_bytes = 0;

  /// True when the whole file parsed as intact records.
  [[nodiscard]] bool clean() const { return discarded_bytes == 0; }
};

/// Append-only durable log writer.
class PersistentLog {
 public:
  /// Opens (creating if needed) `path` for appending. If the existing file
  /// ends in a torn or corrupt tail (e.g. a crash mid-fwrite), the tail is
  /// truncated back to the last intact record BEFORE appending — otherwise
  /// every later append would sit behind the tear, unreachable to load()'s
  /// stop-at-first-bad-record recovery.
  /// Throws std::runtime_error if the file cannot be opened.
  explicit PersistentLog(std::string path);
  ~PersistentLog();

  PersistentLog(const PersistentLog&) = delete;
  PersistentLog& operator=(const PersistentLog&) = delete;

  /// Appends one record (buffered; call flush for durability points).
  void append(const LogEntry& entry);

  /// Flushes buffered records to the OS.
  void flush();

  /// Bytes appended through this writer.
  [[nodiscard]] std::size_t bytes_written() const { return bytes_written_; }

  /// Torn-tail bytes discarded when this writer opened the file (0 when the
  /// file was clean or absent).
  [[nodiscard]] std::size_t recovered_bytes_discarded() const {
    return recovered_bytes_discarded_;
  }

  /// Parses a log file: every intact record, the end offset of the intact
  /// prefix, and how many torn/corrupt tail bytes follow it.
  [[nodiscard]] static LogScan scan(const std::string& path);

  /// Reads every intact record of a log file, stopping silently at the
  /// first torn or corrupt one.
  [[nodiscard]] static std::vector<LogEntry> load(const std::string& path);

  /// Loads a log file into an in-memory MessageLog (replay-ready).
  [[nodiscard]] static MessageLog load_into_memory(const std::string& path);

 private:
  std::string path_;
  std::FILE* file_ = nullptr;
  std::size_t bytes_written_ = 0;
  std::size_t recovered_bytes_discarded_ = 0;
};

}  // namespace ftcorba::ft
