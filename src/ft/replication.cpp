#include "ft/replication.hpp"

namespace ftcorba::ft {

ReplicaRecovery::ReplicaRecovery(orb::Orb& orb, ConnectionId connection,
                                 orb::ObjectKey key,
                                 std::shared_ptr<StateMachine> machine)
    : orb_(orb),
      connection_(connection),
      key_(std::move(key)),
      machine_(std::move(machine)) {}

bool ReplicaRecovery::start(TimePoint now) {
  buffer_ = std::make_shared<BufferingServant>();
  orb_.activate(key_, buffer_);
  giop::CdrWriter no_args;
  auto sent = orb_.invoke(now, connection_, key_, kGetStateOp, no_args,
                          [this](const giop::Reply& reply, ByteOrder order) {
                            finish(reply, order);
                          });
  if (!sent) {
    orb_.deactivate(key_);
    buffer_.reset();
    return false;
  }
  return true;
}

void ReplicaRecovery::finish(const giop::Reply& reply, ByteOrder body_order) {
  // Restore the snapshot taken at the get-state delivery point...
  giop::CdrReader body(reply.body, body_order);
  machine_->restore(body.octet_seq());
  // ...then replay everything the buffer saw after that point.
  replica_ = std::make_shared<ActiveReplica>(machine_);
  for (const BufferingServant::BufferedRequest& req : buffer_->buffered()) {
    giop::CdrReader in(req.arguments, req.order);
    giop::CdrWriter out;
    (void)replica_->machine().apply(req.operation, in, out);
  }
  orb_.activate(key_, replica_);
  buffer_.reset();
  done_ = true;
}

std::size_t replay_requests(const MessageLog& log, const ConnectionId& connection,
                            const orb::ObjectKey& key, StateMachine& machine,
                            RequestNum after) {
  std::size_t applied = 0;
  for (const LogEntry& entry : log.replay_since(connection, after)) {
    if (entry.kind != MessageKind::kRequest) continue;
    giop::GiopMessage msg;
    try {
      msg = giop::decode(entry.giop_message);
    } catch (const giop::CdrError&) {
      continue;  // a logged non-GIOP payload; nothing to apply
    }
    const auto* request = std::get_if<giop::Request>(&msg.body);
    if (!request || orb::ObjectKey{request->object_key} != key) continue;
    if (request->operation == kGetStateOp) continue;
    giop::CdrReader in(request->body, msg.header.byte_order);
    giop::CdrWriter out;
    (void)machine.apply(request->operation, in, out);
    ++applied;
  }
  return applied;
}

}  // namespace ftcorba::ft
