// fault_notifier.hpp — conveys PGMP fault reports to the fault-tolerance
// infrastructure (§7.2: "The protocol then issues a fault report ... which
// is conveyed to the fault tolerance infrastructure"), which reacts by
// removing affected replicas and activating backups.
#pragma once

#include <functional>
#include <vector>

#include "common/ids.hpp"
#include "ftmp/events.hpp"

namespace ftcorba::ft {

/// Dispatches fault and membership events to registered consumers.
class FaultNotifier {
 public:
  using FaultHandler = std::function<void(const ftmp::FaultReport&)>;
  using MembershipHandler = std::function<void(const ftmp::MembershipChanged&)>;

  /// Registers a consumer of fault reports (e.g. a replication manager
  /// that activates a backup replica).
  void on_fault(FaultHandler handler) { fault_handlers_.push_back(std::move(handler)); }

  /// Registers a consumer of membership changes.
  void on_membership(MembershipHandler handler) {
    membership_handlers_.push_back(std::move(handler));
  }

  /// Feeds one stack event; fan-outs to matching handlers.
  void on_event(const ftmp::Event& event) {
    if (const auto* fault = std::get_if<ftmp::FaultReport>(&event)) {
      faults_seen_.push_back(*fault);
      for (const auto& h : fault_handlers_) h(*fault);
    } else if (const auto* change = std::get_if<ftmp::MembershipChanged>(&event)) {
      for (const auto& h : membership_handlers_) h(*change);
    }
  }

  /// All fault reports observed (diagnostics / tests).
  [[nodiscard]] const std::vector<ftmp::FaultReport>& faults() const {
    return faults_seen_;
  }

 private:
  std::vector<FaultHandler> fault_handlers_;
  std::vector<MembershipHandler> membership_handlers_;
  std::vector<ftmp::FaultReport> faults_seen_;
};

}  // namespace ftcorba::ft
