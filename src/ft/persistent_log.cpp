#include "ft/persistent_log.hpp"

#include <stdexcept>

#include "common/codec.hpp"

namespace ftcorba::ft {

namespace {
constexpr std::uint8_t kMagic[4] = {'F', 'T', 'L', 'G'};

[[nodiscard]] Bytes encode_record_body(const LogEntry& entry) {
  Writer w(ByteOrder::kBig);
  for (std::uint8_t b : kMagic) w.u8(b);
  w.u8(static_cast<std::uint8_t>(entry.kind));
  w.u32(entry.connection.client_domain.raw());
  w.u32(entry.connection.client_group.raw());
  w.u32(entry.connection.server_domain.raw());
  w.u32(entry.connection.server_group.raw());
  w.u64(entry.request_num);
  w.u64(entry.timestamp);
  w.blob(entry.giop_message);
  return std::move(w).take();
}
}  // namespace

std::uint32_t crc32(BytesView data) {
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::uint8_t byte : data) {
    crc ^= byte;
    for (int k = 0; k < 8; ++k) {
      crc = (crc >> 1) ^ (0xEDB88320u & (0u - (crc & 1u)));
    }
  }
  return ~crc;
}

PersistentLog::PersistentLog(std::string path) : path_(std::move(path)) {
  file_ = std::fopen(path_.c_str(), "ab");
  if (!file_) throw std::runtime_error("cannot open log file: " + path_);
}

PersistentLog::~PersistentLog() {
  if (file_) std::fclose(file_);
}

void PersistentLog::append(const LogEntry& entry) {
  const Bytes body = encode_record_body(entry);
  Writer tail(ByteOrder::kBig);
  tail.u32(crc32(body));
  const Bytes crc_bytes = std::move(tail).take();
  if (std::fwrite(body.data(), 1, body.size(), file_) != body.size() ||
      std::fwrite(crc_bytes.data(), 1, crc_bytes.size(), file_) != crc_bytes.size()) {
    throw std::runtime_error("log append failed: " + path_);
  }
  bytes_written_ += body.size() + crc_bytes.size();
}

void PersistentLog::flush() {
  if (file_) std::fflush(file_);
}

std::vector<LogEntry> PersistentLog::load(const std::string& path) {
  std::vector<LogEntry> out;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return out;
  Bytes content;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    content.insert(content.end(), buf, buf + n);
  }
  std::fclose(f);

  Reader r(content, ByteOrder::kBig);
  while (r.remaining() > 0) {
    const std::size_t record_start = r.position();
    try {
      for (std::uint8_t expected : kMagic) {
        if (r.u8() != expected) return out;  // torn/garbage: stop
      }
      LogEntry entry;
      const std::uint8_t kind = r.u8();
      if (kind > 1) return out;
      entry.kind = static_cast<MessageKind>(kind);
      entry.connection.client_domain = FtDomainId{r.u32()};
      entry.connection.client_group = ObjectGroupId{r.u32()};
      entry.connection.server_domain = FtDomainId{r.u32()};
      entry.connection.server_group = ObjectGroupId{r.u32()};
      entry.request_num = r.u64();
      entry.timestamp = r.u64();
      entry.giop_message = r.blob();
      const std::size_t record_end = r.position();
      const std::uint32_t stored_crc = r.u32();
      const BytesView body{content.data() + record_start, record_end - record_start};
      if (crc32(body) != stored_crc) return out;  // corrupt: stop
      out.push_back(std::move(entry));
    } catch (const CodecError&) {
      return out;  // truncated tail: stop
    }
  }
  return out;
}

MessageLog PersistentLog::load_into_memory(const std::string& path) {
  MessageLog log;
  for (LogEntry& entry : load(path)) {
    log.record(std::move(entry));
  }
  return log;
}

}  // namespace ftcorba::ft
