#include "ft/persistent_log.hpp"

#include <filesystem>
#include <stdexcept>

#include "common/codec.hpp"
#include "common/log.hpp"
#include "common/metrics.hpp"

namespace ftcorba::ft {

namespace {
constexpr std::uint8_t kMagic[4] = {'F', 'T', 'L', 'G'};

[[nodiscard]] Bytes encode_record_body(const LogEntry& entry) {
  Writer w(ByteOrder::kBig);
  for (std::uint8_t b : kMagic) w.u8(b);
  w.u8(static_cast<std::uint8_t>(entry.kind));
  w.u32(entry.connection.client_domain.raw());
  w.u32(entry.connection.client_group.raw());
  w.u32(entry.connection.server_domain.raw());
  w.u32(entry.connection.server_group.raw());
  w.u64(entry.request_num);
  w.u64(entry.timestamp);
  w.blob(entry.giop_message);
  return std::move(w).take();
}
}  // namespace

std::uint32_t crc32(BytesView data) {
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::uint8_t byte : data) {
    crc ^= byte;
    for (int k = 0; k < 8; ++k) {
      crc = (crc >> 1) ^ (0xEDB88320u & (0u - (crc & 1u)));
    }
  }
  return ~crc;
}

PersistentLog::PersistentLog(std::string path) : path_(std::move(path)) {
  // Recover-to-last-good-record before appending: a crash mid-fwrite leaves
  // a torn tail, and appends behind a tear would be invisible to load()'s
  // stop-at-first-bad-record replay — truncate the tear away first.
  const LogScan existing = scan(path_);
  if (!existing.clean()) {
    std::error_code ec;
    std::filesystem::resize_file(path_, existing.good_bytes, ec);
    if (ec) {
      throw std::runtime_error("cannot truncate torn log tail: " + path_ +
                               ": " + ec.message());
    }
    recovered_bytes_discarded_ = existing.discarded_bytes;
    FTC_LOG(kWarn) << "persistent log " << path_ << ": discarded "
                   << existing.discarded_bytes
                   << " torn tail bytes; recovered to last good record at "
                   << existing.good_bytes;
    static metrics::CounterHandle truncations = metrics::counter(
        "ftmp_ft_log_tail_truncations_total",
        "Log files whose torn/corrupt tail was truncated back to the last "
        "intact record on open",
        "files", "ft");
    static metrics::CounterHandle truncated_bytes = metrics::counter(
        "ftmp_ft_log_tail_truncated_bytes_total",
        "Torn/corrupt tail bytes discarded by open-time recovery", "bytes",
        "ft");
    truncations.add();
    truncated_bytes.add(existing.discarded_bytes);
  }
  file_ = std::fopen(path_.c_str(), "ab");
  if (!file_) throw std::runtime_error("cannot open log file: " + path_);
}

PersistentLog::~PersistentLog() {
  if (file_) std::fclose(file_);
}

void PersistentLog::append(const LogEntry& entry) {
  const Bytes body = encode_record_body(entry);
  Writer tail(ByteOrder::kBig);
  tail.u32(crc32(body));
  const Bytes crc_bytes = std::move(tail).take();
  if (std::fwrite(body.data(), 1, body.size(), file_) != body.size() ||
      std::fwrite(crc_bytes.data(), 1, crc_bytes.size(), file_) != crc_bytes.size()) {
    throw std::runtime_error("log append failed: " + path_);
  }
  bytes_written_ += body.size() + crc_bytes.size();
}

void PersistentLog::flush() {
  if (file_) std::fflush(file_);
}

LogScan PersistentLog::scan(const std::string& path) {
  LogScan out;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return out;
  Bytes content;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    content.insert(content.end(), buf, buf + n);
  }
  std::fclose(f);

  const auto stop = [&] {
    out.discarded_bytes = content.size() - out.good_bytes;
    return out;
  };
  Reader r(content, ByteOrder::kBig);
  while (r.remaining() > 0) {
    const std::size_t record_start = r.position();
    try {
      for (std::uint8_t expected : kMagic) {
        if (r.u8() != expected) return stop();  // torn/garbage: stop
      }
      LogEntry entry;
      const std::uint8_t kind = r.u8();
      if (kind > 1) return stop();
      entry.kind = static_cast<MessageKind>(kind);
      entry.connection.client_domain = FtDomainId{r.u32()};
      entry.connection.client_group = ObjectGroupId{r.u32()};
      entry.connection.server_domain = FtDomainId{r.u32()};
      entry.connection.server_group = ObjectGroupId{r.u32()};
      entry.request_num = r.u64();
      entry.timestamp = r.u64();
      entry.giop_message = r.blob();
      const std::size_t record_end = r.position();
      const std::uint32_t stored_crc = r.u32();
      const BytesView body{content.data() + record_start, record_end - record_start};
      if (crc32(body) != stored_crc) return stop();  // corrupt: stop
      out.entries.push_back(std::move(entry));
      out.good_bytes = r.position();
    } catch (const CodecError&) {
      return stop();  // truncated tail: stop
    }
  }
  return out;
}

std::vector<LogEntry> PersistentLog::load(const std::string& path) {
  return scan(path).entries;
}

MessageLog PersistentLog::load_into_memory(const std::string& path) {
  MessageLog log;
  for (LogEntry& entry : load(path)) {
    log.record(std::move(entry));
  }
  return log;
}

}  // namespace ftcorba::ft
