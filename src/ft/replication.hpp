// replication.hpp — active replication of CORBA objects over FTMP
// (DESIGN.md S12): the reason the protocol exists ("object replication is
// of little value unless the states of the replicas ... remain
// consistent", §1).
//
// Model: the application supplies a deterministic StateMachine. Every
// replica hosts it behind an ActiveReplica servant; because FTMP delivers
// requests in the same total order everywhere, replica states stay
// identical, every replica answers every request, and the client-side ORB
// suppresses the duplicate replies (§4).
//
// Recovery of a new replica uses the total order as a consistent cut:
//   1. the new processor joins the server processor group (PGMP);
//   2. a BufferingServant records delivered requests without executing or
//      answering them;
//   3. the recoverer invokes the built-in "_ftc_get_state" operation; its
//      delivery point IS the snapshot point at every existing replica;
//   4. the snapshot is restored, buffered requests ordered after the
//      snapshot point are applied, and the ActiveReplica takes over.
#pragma once

#include <deque>
#include <memory>
#include <string>

#include "ft/message_log.hpp"
#include "giop/cdr.hpp"
#include "giop/messages.hpp"
#include "orb/object.hpp"
#include "orb/orb.hpp"
#include "orb/servant.hpp"

namespace ftcorba::ft {

/// The built-in state-transfer operation name.
inline constexpr const char* kGetStateOp = "_ftc_get_state";

/// A deterministic application state machine: equal operation sequences
/// produce equal states and equal results on every replica.
class StateMachine {
 public:
  virtual ~StateMachine() = default;

  /// Executes one operation, reading arguments from `in` and writing
  /// results to `out`. Must be deterministic (no clocks, no randomness).
  virtual giop::ReplyStatus apply(const std::string& operation, giop::CdrReader& in,
                                  giop::CdrWriter& out) = 0;

  /// Serializes the complete state.
  [[nodiscard]] virtual Bytes snapshot() const = 0;

  /// Replaces the state from a snapshot.
  virtual void restore(BytesView snapshot) = 0;
};

/// Servant adapter that executes operations against a StateMachine and
/// answers the built-in state-transfer operation with a snapshot.
class ActiveReplica : public orb::Servant {
 public:
  explicit ActiveReplica(std::shared_ptr<StateMachine> machine)
      : machine_(std::move(machine)) {}

  giop::ReplyStatus invoke(const std::string& operation, giop::CdrReader& in,
                           giop::CdrWriter& out) override {
    if (operation == kGetStateOp) {
      out.octet_seq(machine_->snapshot());
      return giop::ReplyStatus::kNoException;
    }
    const giop::ReplyStatus status = machine_->apply(operation, in, out);
    applied_ += 1;
    return status;
  }

  /// Operations applied since construction (tests).
  [[nodiscard]] std::uint64_t applied() const { return applied_; }

  /// The wrapped machine.
  [[nodiscard]] StateMachine& machine() { return *machine_; }

 private:
  std::shared_ptr<StateMachine> machine_;
  std::uint64_t applied_ = 0;
};

/// Records the ordered request stream during recovery without executing or
/// answering; the get-state request from `recoverer_conn`/`recoverer_req`
/// marks the snapshot cut.
class BufferingServant : public orb::Servant {
 public:
  struct BufferedRequest {
    std::string operation;
    Bytes arguments;
    ByteOrder order{};
  };

  giop::ReplyStatus invoke(const std::string& operation, giop::CdrReader& in,
                           giop::CdrWriter& out) override {
    (void)out;
    if (operation == kGetStateOp) {
      // The snapshot cut: everything buffered so far is inside the
      // snapshot; everything after must be replayed.
      buffer_.clear();
      cut_seen_ = true;
      return giop::ReplyStatus::kNoException;
    }
    BufferedRequest req;
    req.operation = operation;
    const BytesView rest = in.rest();
    req.arguments.assign(rest.begin(), rest.end());
    req.order = in.order();
    buffer_.push_back(std::move(req));
    return giop::ReplyStatus::kNoException;
  }

  bool suppress_reply() const override { return true; }

  /// True once the recoverer's own get-state request was delivered here.
  [[nodiscard]] bool cut_seen() const { return cut_seen_; }

  /// Requests ordered after the cut (to replay onto the restored state).
  [[nodiscard]] const std::deque<BufferedRequest>& buffered() const { return buffer_; }

 private:
  std::deque<BufferedRequest> buffer_;
  bool cut_seen_ = false;
};

/// Drives the recovery of one replica: installs the BufferingServant,
/// requests the snapshot, restores + replays, then swaps in the live
/// ActiveReplica.
class ReplicaRecovery {
 public:
  /// `connection` must be usable from this processor (it joined the server
  /// group). `key` is the object to recover.
  ReplicaRecovery(orb::Orb& orb, ConnectionId connection, orb::ObjectKey key,
                  std::shared_ptr<StateMachine> machine);

  /// Starts recovery: activates the buffering servant and sends the
  /// get-state request. Returns false if the connection was not ready.
  bool start(TimePoint now);

  /// True once the replica is live (state restored, buffer replayed,
  /// ActiveReplica activated).
  [[nodiscard]] bool done() const { return done_; }

  /// The live replica servant once done (nullptr before).
  [[nodiscard]] std::shared_ptr<ActiveReplica> replica() const { return replica_; }

 private:
  void finish(const giop::Reply& reply, ByteOrder body_order);

  orb::Orb& orb_;
  ConnectionId connection_;
  orb::ObjectKey key_;
  std::shared_ptr<StateMachine> machine_;
  std::shared_ptr<BufferingServant> buffer_;
  std::shared_ptr<ActiveReplica> replica_;
  bool done_ = false;
};

/// Log-based recovery (§4: "replaying messages from a log"): re-applies
/// every logged Request on `connection` for `key`, with request number
/// greater than `after`, to `machine` in delivery order. Returns the
/// number of operations applied. The built-in get-state operation is
/// skipped (it never mutates state).
std::size_t replay_requests(const MessageLog& log, const ConnectionId& connection,
                            const orb::ObjectKey& key, StateMachine& machine,
                            RequestNum after = 0);

}  // namespace ftcorba::ft
