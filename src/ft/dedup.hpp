// dedup.hpp — duplicate detection and suppression (§4): with object
// replication, every replica of a client group multicasts the same request
// (same connection id, same request number), and every replica of the
// server group multicasts the same reply. Receivers must process exactly
// one copy. The ⟨connection id, request number⟩ pair is unique per
// invocation, and requests/replies are distinguished by direction.
#pragma once

#include <cstdint>
#include <map>
#include <set>

#include "common/ids.hpp"
#include "common/metrics.hpp"

namespace ftcorba::ft {

/// Which half of an invocation a message carries.
enum class MessageKind : std::uint8_t { kRequest = 0, kReply = 1 };

/// Counters for tests and the E6 bench.
struct DedupStats {
  std::uint64_t accepted = 0;
  std::uint64_t suppressed = 0;
};

/// Tracks ⟨connection, request number, kind⟩ triples and accepts only the
/// first occurrence of each. Old entries are reclaimed per connection once
/// the application declares a low-water mark (request numbers are
/// monotonically increasing over a connection, §4).
class DuplicateSuppressor {
 public:
  DuplicateSuppressor()
      : accepted_(metrics::counter(
            "ft_dedup_accepted_total",
            "First copies accepted by duplicate suppression", "messages",
            "giop")),
        suppressed_(metrics::counter(
            "ft_dedup_suppressed_total",
            "Replica copies discarded by duplicate suppression", "messages",
            "giop")) {}

  /// Returns true exactly once per ⟨connection, request_num, kind⟩.
  bool accept(const ConnectionId& connection, RequestNum request_num, MessageKind kind) {
    auto& seen = seen_[connection];
    const std::uint64_t key = (request_num << 1) | static_cast<std::uint64_t>(kind);
    if (request_num < low_water_[connection] || !seen.insert(key).second) {
      stats_.suppressed += 1;
      suppressed_.add();
      return false;
    }
    stats_.accepted += 1;
    accepted_.add();
    return true;
  }

  /// True if the triple has been seen (without recording anything).
  [[nodiscard]] bool seen(const ConnectionId& connection, RequestNum request_num,
                          MessageKind kind) const {
    auto it = seen_.find(connection);
    if (it == seen_.end()) return false;
    const std::uint64_t key = (request_num << 1) | static_cast<std::uint64_t>(kind);
    return it->second.contains(key);
  }

  /// Declares that request numbers below `watermark` on `connection` are
  /// finished: their entries are reclaimed and future copies suppressed.
  void trim(const ConnectionId& connection, RequestNum watermark) {
    low_water_[connection] = watermark;
    auto it = seen_.find(connection);
    if (it == seen_.end()) return;
    auto& seen = it->second;
    seen.erase(seen.begin(), seen.lower_bound(watermark << 1));
  }

  /// Entries currently retained (memory introspection).
  [[nodiscard]] std::size_t size() const {
    std::size_t n = 0;
    for (const auto& [conn, seen] : seen_) n += seen.size();
    return n;
  }

  [[nodiscard]] const DedupStats& stats() const { return stats_; }

 private:
  std::map<ConnectionId, std::set<std::uint64_t>> seen_;
  std::map<ConnectionId, RequestNum> low_water_;
  DedupStats stats_;
  metrics::CounterHandle accepted_;
  metrics::CounterHandle suppressed_;
};

}  // namespace ftcorba::ft
