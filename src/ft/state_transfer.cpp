#include "ft/state_transfer.hpp"

#include <algorithm>
#include <utility>

#include "common/codec.hpp"
#include "common/log.hpp"

namespace ftcorba::ft {

namespace {

[[nodiscard]] std::uint64_t mix64(std::uint64_t h) {
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdull;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ull;
  h ^= h >> 33;
  return h;
}

[[nodiscard]] bool contains(const std::vector<ProcessorId>& v, ProcessorId p) {
  return std::find(v.begin(), v.end(), p) != v.end();
}

}  // namespace

std::uint64_t state_fnv1a64(BytesView data) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::uint8_t b : data) {
    h ^= b;
    h *= 0x100000001b3ull;
  }
  return h;
}

std::uint64_t state_digest_mix(std::uint64_t digest, std::uint32_t source,
                               SeqNum seq, std::uint64_t payload_hash) {
  std::uint64_t h = digest;
  h = mix64(h ^ (static_cast<std::uint64_t>(source) | 0x517cc1b727220a95ull));
  h = mix64(h ^ seq);
  h = mix64(h ^ payload_hash);
  return h;
}

StateTransferManager::StateTransferManager(ProcessorId self,
                                           ProcessorGroupId group,
                                           ftmp::Stack& stack,
                                           const ftmp::Config& config,
                                           Checkpointable& state, ApplyFn apply)
    : self_(self),
      group_(group),
      stack_(stack),
      config_(config),
      state_(state),
      apply_(std::move(apply)) {
  metrics_.transfers_completed = metrics::counter(
      "ftmp_ft_state_transfers_completed_total",
      "State transfers finished (snapshot restored, buffered suffix replayed)",
      "transfers", "ft");
  metrics_.transfers_resumed = metrics::counter(
      "ftmp_ft_state_transfers_resumed_total",
      "Transfers that survived a donor crash by resuming at the next "
      "surviving holder (chunk offset kept)",
      "transfers", "ft");
  metrics_.transfers_restarted = metrics::counter(
      "ftmp_ft_state_transfers_restarted_total",
      "Transfers re-anchored at a newer view cut after all snapshot holders "
      "were lost",
      "transfers", "ft");
  metrics_.chunks_sent = metrics::counter(
      "ftmp_ft_state_chunks_sent_total",
      "StateChunk messages served by this process as donor", "chunks", "ft");
  metrics_.chunk_bytes_sent = metrics::counter(
      "ftmp_ft_state_chunk_bytes_sent_total",
      "Snapshot payload bytes served by this process as donor", "bytes", "ft");
  metrics_.messages_replayed = metrics::counter(
      "ftmp_ft_state_messages_replayed_total",
      "Buffered ordered messages applied after a snapshot restore", "messages",
      "ft");
  metrics_.digest_mismatches = metrics::counter(
      "ftmp_ft_state_digest_mismatches_total",
      "Anti-entropy alarms: a peer at the same fingerprint reported a "
      "different rolling digest",
      "mismatches", "ft");
}

std::uint64_t StateTransferManager::fingerprint() const {
  // applied_hw_ is an ordered map keyed by source id, so this fold is
  // already over sorted (source, hw) pairs. Zero watermarks are skipped:
  // a map that never saw a source and a map holding an explicit zero for
  // it describe the same position.
  std::uint64_t h = 0x9ae16a3b2f90404full;
  for (const auto& [source, hw] : applied_hw_) {
    if (hw == 0) continue;
    h = mix64(h ^ source);
    h = mix64(h ^ hw);
  }
  return h;
}

void StateTransferManager::on_event(TimePoint now, const ftmp::Event& event) {
  if (const auto* msg = std::get_if<ftmp::DeliveredMessage>(&event)) {
    if (catchup_) {
      catchup_->buffered.push_back(event);
      stats_.messages_buffered += 1;
      return;
    }
    apply_one(now, *msg);
    return;
  }
  if (const auto* change = std::get_if<ftmp::MembershipChanged>(&event)) {
    on_install(now, *change);
    return;
  }
  if (const auto* msg = std::get_if<ftmp::StateMessage>(&event)) {
    on_state(now, *msg);
    return;
  }
  if (std::get_if<ftmp::SelfEvicted>(&event)) {
    // Out of the group: drop all transfer machinery. The application state
    // and digest stay as they are — a later re-admission restarts recovery
    // from scratch in a fresh incarnation.
    catchup_.reset();
    snapshots_.clear();
    catching_up_.clear();
    live_ = false;
    return;
  }
  // FaultReport / connection events carry nothing for state transfer.
}

void StateTransferManager::apply_one(TimePoint now,
                                     const ftmp::DeliveredMessage& msg) {
  const BytesView payload{msg.giop_message.data(), msg.giop_message.size()};
  digest_ = state_digest_mix(digest_, msg.source.raw(), msg.seq,
                             state_fnv1a64(payload));
  applied_hw_[msg.source.raw()] = msg.seq;
  if (apply_) apply_(now, msg);
}

void StateTransferManager::prune_for_install(
    const ftmp::MembershipChanged& change) {
  // Departed members stop producing; re-admitted members restart their
  // stream at sequence 1 under a fresh incarnation. Either way the old
  // watermark must go, or the replay filter would wrongly exclude a
  // rejoined source's fresh messages.
  for (ProcessorId p : change.left) applied_hw_.erase(p.raw());
  for (ProcessorId p : change.joined) applied_hw_.erase(p.raw());
}

void StateTransferManager::on_install(TimePoint now,
                                      const ftmp::MembershipChanged& change) {
  members_ = change.membership.members;
  std::sort(members_.begin(), members_.end());

  // Track who is mid-transfer (drives snapshot-at-every-install and donor
  // holder sets). Joiners admitted by this install start catching up;
  // members that left mid-transfer stop.
  for (ProcessorId p : change.left) {
    catching_up_.erase(p.raw());
    for (auto& [ts, snap] : snapshots_) snap.interested.erase(p.raw());
  }
  if (change.reason != ftmp::MembershipChanged::Reason::kInitial) {
    for (ProcessorId p : change.joined) {
      if (p != self_) catching_up_.insert(p.raw());
    }
  }

  if (catchup_) {
    // We are the joiner. The install is buffered so its watermark prunes
    // replay in order relative to buffered messages...
    catchup_->buffered.push_back(ftmp::Event{change});
    // ...but the holder bookkeeping must happen now: donors may have died.
    std::vector<ProcessorId> alive;
    for (ProcessorId h : catchup_->holders) {
      // A holder that crashed and was re-admitted is itself catching up
      // now — its snapshot died with the old incarnation.
      if (contains(members_, h) &&
          catching_up_.find(h.raw()) == catching_up_.end()) {
        alive.push_back(h);
      }
    }
    if (alive.empty()) {
      // No snapshot holder survived: re-anchor the whole transfer at this
      // install's cut. Survivors snapshot at every install while anyone is
      // catching up, so a snapshot keyed by this view exists. The buffer is
      // kept — the new cut's watermarks subsume anything it already covers.
      stats_.transfers_restarted += 1;
      metrics_.transfers_restarted.add();
      catchup_->view_ts = change.membership.timestamp;
      catchup_->holders.clear();
      for (ProcessorId p : members_) {
        if (p != self_ && catching_up_.find(p.raw()) == catching_up_.end()) {
          catchup_->holders.push_back(p);
        }
      }
      if (catchup_->holders.empty()) {
        // Nobody caught-up survives at all (we are the last member, or
        // every other member is itself mid-transfer): the group's prior
        // state is unrecoverable. Degrade deterministically — adopt what
        // we have, apply the buffered suffix, and go live — rather than
        // requesting into the void forever.
        FTC_LOG(kWarn) << to_string(self_) << ": state transfer abandoned: "
                       << "no caught-up member survives; going live with "
                       << "locally observed state";
        std::deque<ftmp::Event> buffered = std::move(catchup_->buffered);
        catchup_.reset();
        live_ = true;
        for (const ftmp::Event& ev : buffered) {
          if (const auto* msg = std::get_if<ftmp::DeliveredMessage>(&ev)) {
            auto hw_it = applied_hw_.find(msg->source.raw());
            const SeqNum hw = hw_it == applied_hw_.end() ? 0 : hw_it->second;
            if (msg->seq > hw) apply_one(now, *msg);
          } else if (const auto* ch = std::get_if<ftmp::MembershipChanged>(&ev)) {
            prune_for_install(*ch);
          }
        }
        send_digest(now);
        return;
      }
      catchup_->chunks.clear();
      catchup_->total_chunks = 0;
      catchup_->next_chunk = 0;
      catchup_->last_requested = 0;
      catchup_->snapshot_digest = 0;
      catchup_->cut_digest = 0;
      catchup_->cut_seqs.clear();
      FTC_LOG(kWarn) << to_string(self_) << ": state transfer lost all "
                     << "snapshot holders; restarting at view "
                     << catchup_->view_ts;
      send_request(now);
      return;
    }
    const bool donor_died = alive.front() != catchup_->holders.front();
    catchup_->holders = std::move(alive);
    if (donor_died) {
      // The serving donor crashed mid-transfer. The next surviving holder
      // takes over; our cumulative next_chunk is the resume offset, so
      // nothing already received is re-sent.
      stats_.transfers_resumed += 1;
      metrics_.transfers_resumed.add();
      send_request(now);
    }
    return;
  }

  // Survivor path.
  prune_for_install(change);
  // Our own admission install (the joiner sees it as kInitial with
  // joined = {self}; the founding bootstrap lists every member in joined
  // and ends up with no holders below, going live immediately).
  if (!live_ && contains(change.joined, self_)) {
    begin_catchup(now, change);
    return;
  }
  live_ = true;
  if (!catching_up_.empty()) take_snapshot(now, change);
  // Post-heal anti-entropy: advertise our position + digest at the install.
  send_digest(now);
}

void StateTransferManager::begin_catchup(TimePoint now,
                                         const ftmp::MembershipChanged& change) {
  CatchUp cu;
  cu.view_ts = change.membership.timestamp;
  // Holders are the established members: not us, not anyone admitted by
  // this same install, not anyone still mid-transfer themselves.
  for (ProcessorId p : members_) {
    if (p == self_ || contains(change.joined, p)) continue;
    if (catching_up_.find(p.raw()) != catching_up_.end()) continue;
    cu.holders.push_back(p);
  }
  if (cu.holders.empty()) {
    // Nobody holds prior state (we are the only full member): nothing to
    // transfer — go live with what we have.
    live_ = true;
    return;
  }
  live_ = false;
  catchup_.emplace(std::move(cu));
  send_request(now);
}

void StateTransferManager::take_snapshot(TimePoint now,
                                         const ftmp::MembershipChanged& change) {
  Snapshot snap;
  snap.bytes = state_.snapshot();
  snap.snapshot_digest =
      state_fnv1a64(BytesView{snap.bytes.data(), snap.bytes.size()});
  snap.cut_digest = digest_;
  // The cut is OUR applied watermarks at this install — by virtual
  // synchrony every survivor applied the same prefix, so these match the
  // install's cut_seqs; using the applied map keeps snapshot, digest and
  // fingerprint self-consistent by construction.
  for (const auto& [source, hw] : applied_hw_) {
    if (hw > 0) snap.cut_seqs.push_back({ProcessorId{source}, hw});
  }
  for (ProcessorId p : members_) {
    if (catching_up_.find(p.raw()) == catching_up_.end()) {
      snap.holders.push_back(p);
    }
  }
  snap.interested = catching_up_;
  snap.created_at = now;
  const std::size_t chunk_bytes = std::max<std::size_t>(1, config_.state_chunk_bytes);
  snap.total_chunks = static_cast<std::uint32_t>(
      std::max<std::size_t>(1, (snap.bytes.size() + chunk_bytes - 1) / chunk_bytes));
  stats_.snapshots_taken += 1;
  snapshots_[change.membership.timestamp] = std::move(snap);
}

void StateTransferManager::on_state(TimePoint now, const ftmp::StateMessage& msg) {
  if (const auto* req = std::get_if<ftmp::StateRequestBody>(&msg.body)) {
    if (msg.source != self_) on_request(now, msg.source, *req);
    return;
  }
  if (const auto* chunk = std::get_if<ftmp::StateChunkBody>(&msg.body)) {
    if (chunk->joiner == self_ && catchup_ &&
        chunk->view_ts == catchup_->view_ts) {
      on_chunk(now, *chunk);
    }
    return;
  }
  if (const auto* dig = std::get_if<ftmp::StateDigestBody>(&msg.body)) {
    if (msg.source != self_) on_peer_digest(now, msg.source, *dig);
    return;
  }
}

void StateTransferManager::on_request(TimePoint now, ProcessorId from,
                                      const ftmp::StateRequestBody& req) {
  // A StateRequest is a liveness claim of catch-up: members that never saw
  // the joiner's admitting install (because they joined later themselves)
  // learn here that `from` is mid-transfer, keeping snapshot-at-install and
  // holder-set computations honest fleet-wide. The joiner's completion
  // digest (below) clears the flag again.
  if (contains(members_, from)) catching_up_.insert(from.raw());
  auto it = snapshots_.find(req.view_ts);
  if (it == snapshots_.end()) return;
  Snapshot& snap = it->second;

  if (req.next_chunk >= snap.total_chunks) {
    // Completion acknowledgement (multicast): every holder releases the
    // joiner; when no joiner needs the snapshot it is dropped immediately.
    snap.interested.erase(from.raw());
    catching_up_.erase(from.raw());
    if (snap.interested.empty()) snapshots_.erase(it);
    return;
  }

  snap.interested.insert(from.raw());
  if (!is_donor(snap)) return;  // a holder, but not the elected donor

  // Request-driven self-clocking: serve a window past the joiner's
  // cumulative offset; the next request both acks and reopens the window.
  const std::uint32_t window =
      static_cast<std::uint32_t>(std::max<std::size_t>(1, config_.state_window_chunks));
  const std::uint32_t end =
      std::min(snap.total_chunks, req.next_chunk + window);
  const std::size_t chunk_bytes = std::max<std::size_t>(1, config_.state_chunk_bytes);
  for (std::uint32_t seq = req.next_chunk; seq < end; ++seq) {
    ftmp::StateChunkBody chunk;
    chunk.joiner = from;
    chunk.view_ts = req.view_ts;
    chunk.chunk_seq = seq;
    chunk.total_chunks = snap.total_chunks;
    chunk.snapshot_digest = snap.snapshot_digest;
    chunk.cut_digest = snap.cut_digest;
    chunk.cut_seqs = snap.cut_seqs;
    const std::size_t begin = static_cast<std::size_t>(seq) * chunk_bytes;
    const std::size_t len = std::min(chunk_bytes, snap.bytes.size() - std::min(snap.bytes.size(), begin));
    chunk.payload.assign(snap.bytes.begin() + static_cast<std::ptrdiff_t>(begin),
                         snap.bytes.begin() + static_cast<std::ptrdiff_t>(begin + len));
    const std::size_t sent_bytes = chunk.payload.size();
    if (!stack_.send_state(now, group_, ftmp::Body{std::move(chunk)})) return;
    stats_.chunks_sent += 1;
    stats_.bytes_sent += sent_bytes;
    metrics_.chunks_sent.add();
    metrics_.chunk_bytes_sent.add(sent_bytes);
  }
}

void StateTransferManager::on_chunk(TimePoint now, const ftmp::StateChunkBody& chunk) {
  CatchUp& cu = *catchup_;
  if (cu.total_chunks == 0) {
    // First chunk of this anchor: adopt the transfer geometry and the cut.
    cu.total_chunks = chunk.total_chunks;
    cu.chunks.assign(cu.total_chunks, std::nullopt);
    cu.snapshot_digest = chunk.snapshot_digest;
    cu.cut_digest = chunk.cut_digest;
    cu.cut_seqs = chunk.cut_seqs;
  }
  if (chunk.chunk_seq >= cu.total_chunks) return;
  if (!cu.chunks[chunk.chunk_seq]) {
    cu.chunks[chunk.chunk_seq] = chunk.payload;
    stats_.chunks_received += 1;
    stats_.bytes_received += chunk.payload.size();
  }
  while (cu.next_chunk < cu.total_chunks && cu.chunks[cu.next_chunk]) {
    cu.next_chunk += 1;
  }
  const std::uint32_t window =
      static_cast<std::uint32_t>(std::max<std::size_t>(1, config_.state_window_chunks));
  if (cu.next_chunk >= cu.total_chunks ||
      cu.next_chunk >= cu.last_requested + window) {
    send_request(now);  // ack progress / reopen the donor's window
  }
  maybe_finish(now);
}

void StateTransferManager::maybe_finish(TimePoint now) {
  CatchUp& cu = *catchup_;
  if (cu.total_chunks == 0 || cu.next_chunk < cu.total_chunks) return;

  Bytes assembled;
  for (const auto& c : cu.chunks) {
    assembled.insert(assembled.end(), c->begin(), c->end());
  }
  if (state_fnv1a64(BytesView{assembled.data(), assembled.size()}) !=
      cu.snapshot_digest) {
    // Reassembly does not match the donor's hash: distrust everything and
    // pull the snapshot again from offset zero.
    stats_.snapshot_verify_failures += 1;
    FTC_LOG(kWarn) << to_string(self_)
                   << ": snapshot digest mismatch on reassembly; re-requesting";
    cu.chunks.assign(cu.total_chunks, std::nullopt);
    cu.next_chunk = 0;
    cu.last_requested = 0;
    send_request(now);
    return;
  }

  state_.restore(BytesView{assembled.data(), assembled.size()});
  digest_ = cu.cut_digest;
  applied_hw_.clear();
  for (const ftmp::SourceSeq& s : cu.cut_seqs) {
    if (s.seq > 0) applied_hw_[s.processor.raw()] = s.seq;
  }

  // Replay the buffered suffix: messages at or before the cut are inside
  // the snapshot (filtered by watermark); installs replay their prunes at
  // the right point in the order.
  std::deque<ftmp::Event> buffered = std::move(cu.buffered);
  const Timestamp view_ts = cu.view_ts;
  const std::uint32_t total = cu.total_chunks;
  catchup_.reset();
  live_ = true;
  for (const ftmp::Event& ev : buffered) {
    if (const auto* msg = std::get_if<ftmp::DeliveredMessage>(&ev)) {
      auto it = applied_hw_.find(msg->source.raw());
      const SeqNum hw = it == applied_hw_.end() ? 0 : it->second;
      if (msg->seq > hw) {
        apply_one(now, *msg);
        stats_.messages_replayed += 1;
        metrics_.messages_replayed.add();
      }
    } else if (const auto* change = std::get_if<ftmp::MembershipChanged>(&ev)) {
      prune_for_install(*change);
    }
  }

  // Completion ack: a StateRequest at total_chunks releases the snapshot
  // on every holder.
  ftmp::StateRequestBody done;
  done.joiner = self_;
  done.view_ts = view_ts;
  done.next_chunk = total;
  stack_.send_state(now, group_, ftmp::Body{done});

  stats_.transfers_completed += 1;
  metrics_.transfers_completed.add();
  FTC_LOG(kInfo) << to_string(self_) << ": state transfer complete at view "
                 << view_ts << " (" << stats_.bytes_received << " bytes, "
                 << stats_.messages_replayed << " replayed)";
  send_digest(now);
}

void StateTransferManager::on_peer_digest(TimePoint now, ProcessorId from,
                                          const ftmp::StateDigestBody& body) {
  (void)now;
  // Only caught-up members publish digests, so a digest from `from` ends
  // its catch-up from everyone's point of view (the holders additionally
  // release it on the completion ack, which precedes this digest).
  catching_up_.erase(from.raw());
  for (auto& [ts, snap] : snapshots_) snap.interested.erase(from.raw());
  if (!caught_up()) return;
  // Digests are only comparable at equal positions: same fingerprint,
  // different rolling digest ⇒ the states genuinely diverged.
  if (body.fingerprint == fingerprint() && body.digest != digest_) {
    stats_.digest_mismatches += 1;
    metrics_.digest_mismatches.add();
    FTC_LOG(kWarn) << to_string(self_) << ": state digest mismatch with "
                   << to_string(from) << " at fingerprint "
                   << body.fingerprint << " (theirs " << body.digest
                   << ", ours " << digest_ << ")";
  }
}

void StateTransferManager::send_request(TimePoint now) {
  if (!catchup_) return;
  ftmp::StateRequestBody req;
  req.joiner = self_;
  req.view_ts = catchup_->view_ts;
  req.next_chunk = catchup_->next_chunk;
  stack_.send_state(now, group_, ftmp::Body{req});
  catchup_->last_requested = catchup_->next_chunk;
  catchup_->last_request_at = now;
}

void StateTransferManager::send_digest(TimePoint now) {
  ftmp::StateDigestBody body;
  body.fingerprint = fingerprint();
  body.digest = digest_;
  stack_.send_state(now, group_, ftmp::Body{body});
  last_digest_sent_ = now;
  if (digest_hook_) digest_hook_(now, body.fingerprint, body.digest);
}

bool StateTransferManager::is_donor(const Snapshot& snap) const {
  // The donor is the smallest-id holder still alive; holders are sorted,
  // so the first survivor is the election winner everywhere (no extra
  // agreement round needed: membership IS the agreement).
  for (ProcessorId h : snap.holders) {
    if (contains(members_, h)) return h == self_;
  }
  return false;
}

void StateTransferManager::tick(TimePoint now) {
  if (catchup_ && config_.state_request_interval > 0 &&
      (catchup_->last_request_at < 0 ||
       now - catchup_->last_request_at >= config_.state_request_interval)) {
    // Retry/keepalive: re-sends the cumulative offset, which is idempotent
    // on the donor (chunks are keyed by (view_ts, chunk_seq)).
    send_request(now);
  }
  if (config_.state_snapshot_ttl > 0) {
    for (auto it = snapshots_.begin(); it != snapshots_.end();) {
      // Age out snapshots nobody is pulling; an in-progress transfer keeps
      // its snapshot alive until completion or the joiner's departure.
      if (it->second.interested.empty() &&
          now - it->second.created_at >= config_.state_snapshot_ttl) {
        it = snapshots_.erase(it);
      } else {
        ++it;
      }
    }
  }
  if (live_ && caught_up() && config_.state_digest_interval > 0 &&
      (last_digest_sent_ < 0 ||
       now - last_digest_sent_ >= config_.state_digest_interval)) {
    send_digest(now);
  }
}

Bytes ReplicaCheckpoint::snapshot() const {
  Writer w(ByteOrder::kBig);
  const Bytes machine_state = machine_->snapshot();
  w.blob(machine_state);
  std::vector<std::pair<ConnectionId, RequestNum>> marks;
  if (log_) marks = log_->watermarks();
  w.u32(static_cast<std::uint32_t>(marks.size()));
  for (const auto& [conn, hw] : marks) {
    w.u32(conn.client_domain.raw());
    w.u32(conn.client_group.raw());
    w.u32(conn.server_domain.raw());
    w.u32(conn.server_group.raw());
    w.u64(hw);
  }
  return std::move(w).take();
}

void ReplicaCheckpoint::restore(BytesView snapshot) {
  Reader r(snapshot, ByteOrder::kBig);
  const Bytes machine_state = r.blob();
  machine_->restore(BytesView{machine_state.data(), machine_state.size()});
  restored_watermarks_.clear();
  const std::uint32_t n = r.u32();
  for (std::uint32_t i = 0; i < n; ++i) {
    ConnectionId conn;
    conn.client_domain = FtDomainId{r.u32()};
    conn.client_group = ObjectGroupId{r.u32()};
    conn.server_domain = FtDomainId{r.u32()};
    conn.server_group = ObjectGroupId{r.u32()};
    const RequestNum hw = r.u64();
    restored_watermarks_.emplace_back(conn, hw);
  }
}

}  // namespace ftcorba::ft
