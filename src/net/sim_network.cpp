#include "net/sim_network.hpp"

#include <algorithm>

namespace ftcorba::net {

SimNetwork::SimNetwork(LinkModel defaults, std::uint64_t seed)
    : defaults_(defaults), root_rng_(seed) {
  metrics_.packets_sent = metrics::counter(
      "net_packets_sent_total", "Datagrams handed to the simulated wire",
      "datagrams", "net");
  metrics_.bytes_sent = metrics::counter(
      "net_bytes_sent_total", "Payload bytes handed to the simulated wire",
      "bytes", "net");
  metrics_.deliveries = metrics::counter(
      "net_receiver_deliveries_total",
      "Per-receiver datagram deliveries (multicast fan-out counted per "
      "subscriber)",
      "datagrams", "net");
  metrics_.drops = metrics::counter(
      "net_receiver_drops_total",
      "Per-receiver drops: injected loss, partitions, crashed hosts",
      "datagrams", "net");
  metrics_.duplicates = metrics::counter(
      "net_receiver_duplicates_total", "Per-receiver injected duplicates",
      "datagrams", "net");
}

void SimNetwork::attach(ProcessorId node) { nodes_.insert(node.raw()); }

void SimNetwork::detach(ProcessorId node) {
  nodes_.erase(node.raw());
  crashed_.erase(node.raw());
  for (auto& [addr, members] : subs_) members.erase(node.raw());
}

void SimNetwork::crash(ProcessorId node) { crashed_.insert(node.raw()); }

void SimNetwork::revive(ProcessorId node) { crashed_.erase(node.raw()); }

bool SimNetwork::crashed(ProcessorId node) const {
  return crashed_.contains(node.raw());
}

void SimNetwork::subscribe(ProcessorId node, McastAddress addr) {
  subs_[addr.raw()].insert(node.raw());
}

void SimNetwork::unsubscribe(ProcessorId node, McastAddress addr) {
  auto it = subs_.find(addr.raw());
  if (it != subs_.end()) it->second.erase(node.raw());
}

void SimNetwork::set_partition(const std::vector<std::vector<ProcessorId>>& cells) {
  partition_cell_.clear();
  partitioned_ = !cells.empty();
  std::uint32_t cell_id = 0;
  for (const auto& cell : cells) {
    for (ProcessorId p : cell) partition_cell_[p.raw()] = cell_id;
    ++cell_id;
  }
}

namespace {
constexpr std::uint64_t link_key(ProcessorId from, ProcessorId to) {
  return (std::uint64_t(from.raw()) << 32) | to.raw();
}
}  // namespace

void SimNetwork::block_link(ProcessorId from, ProcessorId to) {
  blocked_links_.insert(link_key(from, to));
}

void SimNetwork::unblock_link(ProcessorId from, ProcessorId to) {
  blocked_links_.erase(link_key(from, to));
}

void SimNetwork::clear_blocked_links() { blocked_links_.clear(); }

bool SimNetwork::link_blocked(ProcessorId from, ProcessorId to) const {
  return blocked_links_.contains(link_key(from, to));
}

void SimNetwork::set_oneway_partition(const std::vector<ProcessorId>& from_cell,
                                      const std::vector<ProcessorId>& to_cell) {
  for (ProcessorId f : from_cell) {
    for (ProcessorId t : to_cell) {
      if (f != t) block_link(f, t);
    }
  }
}

void SimNetwork::set_link(ProcessorId from, ProcessorId to, LinkModel model) {
  link_overrides_[{from.raw(), to.raw()}] = model;
}

void SimNetwork::clear_link(ProcessorId from, ProcessorId to) {
  link_overrides_.erase({from.raw(), to.raw()});
}

const LinkModel& SimNetwork::link(ProcessorId from, ProcessorId to) const {
  auto it = link_overrides_.find({from.raw(), to.raw()});
  return it != link_overrides_.end() ? it->second : defaults_;
}

bool SimNetwork::reachable(ProcessorId from, ProcessorId to) const {
  if (crashed_.contains(from.raw()) || crashed_.contains(to.raw())) return false;
  if (blocked_links_.contains(link_key(from, to))) return false;
  if (!partitioned_) return true;
  // Nodes absent from every named cell implicitly share one extra cell, so a
  // partial set_partition never silently black-holes unmentioned nodes.
  constexpr std::uint32_t kRestCell = 0xFFFFFFFFu;
  auto a = partition_cell_.find(from.raw());
  auto b = partition_cell_.find(to.raw());
  const std::uint32_t cell_a = a != partition_cell_.end() ? a->second : kRestCell;
  const std::uint32_t cell_b = b != partition_cell_.end() ? b->second : kRestCell;
  return cell_a == cell_b;
}

Rng& SimNetwork::link_rng(ProcessorId from, ProcessorId to) {
  auto key = std::make_pair(from.raw(), to.raw());
  auto it = link_rngs_.find(key);
  if (it == link_rngs_.end()) {
    const std::uint64_t stream =
        (std::uint64_t(from.raw()) << 32) | std::uint64_t(to.raw());
    it = link_rngs_.emplace(key, root_rng_.split(stream)).first;
  }
  return it->second;
}

void SimNetwork::enqueue(TimePoint at, ProcessorId dest, const Datagram& d) {
  queue_.push(QueuedDelivery{at, tie_counter_++, dest, d});
}

void SimNetwork::send(TimePoint now, ProcessorId from, const Datagram& datagram) {
  stats_.packets_sent += 1;
  stats_.bytes_sent += datagram.payload.size();
  metrics_.packets_sent.add();
  metrics_.bytes_sent.add(datagram.payload.size());
  if (tap_) tap_(now, from, datagram);
  if (crashed_.contains(from.raw())) return;  // a crashed host emits nothing
  auto it = subs_.find(datagram.addr.raw());
  if (it == subs_.end()) return;

  // Uplink serialization: with finite bandwidth the packet leaves the
  // sender only when its previous transmissions have drained. One
  // transmission serves every receiver (multicast on a shared medium).
  TimePoint depart = now;
  const LinkModel& sender_model = link(from, from);
  if (sender_model.bandwidth_bps > 0 || sender_model.per_packet_cost > 0) {
    TimePoint& free_at = uplink_free_at_[from.raw()];
    depart = std::max(now, free_at);
    Duration tx_time = sender_model.per_packet_cost;
    if (sender_model.bandwidth_bps > 0) {
      tx_time += static_cast<Duration>(
          double(datagram.payload.size()) * 8.0 * double(kSecond) /
          sender_model.bandwidth_bps);
    }
    free_at = depart + tx_time;
    depart = free_at;
  }

  // Deterministic fan-out order: sorted receiver ids.
  std::vector<std::uint32_t> receivers(it->second.begin(), it->second.end());
  std::sort(receivers.begin(), receivers.end());

  for (std::uint32_t raw_dest : receivers) {
    const ProcessorId dest{raw_dest};
    if (dest == from) {
      // Host loopback: lossless, negligible delay.
      enqueue(depart + 1 * kMicrosecond, dest, datagram);
      stats_.receiver_deliveries += 1;
      metrics_.deliveries.add();
      continue;
    }
    if (!reachable(from, dest)) {
      stats_.receiver_drops += 1;
      metrics_.drops.add();
      continue;
    }
    const LinkModel& m = link(from, dest);
    Rng& rng = link_rng(from, dest);
    double p_loss = m.loss;
    if (m.burst_loss > 0) {
      // Gilbert–Elliott: advance the two-state chain once per packet. Gated
      // on burst_loss so default configs draw nothing extra from the RNG.
      bool& bad = ge_bad_[{from.raw(), dest.raw()}];
      bad = bad ? !rng.chance(m.burst_exit) : rng.chance(m.burst_enter);
      if (bad) p_loss = m.burst_loss;
    }
    if (rng.chance(p_loss)) {
      stats_.receiver_drops += 1;
      metrics_.drops.add();
      continue;
    }
    Duration extra = m.jitter > 0 ? rng.next_in(0, m.jitter) : 0;
    enqueue(depart + m.delay + extra, dest, datagram);
    stats_.receiver_deliveries += 1;
    metrics_.deliveries.add();
    if (rng.chance(m.duplicate)) {
      Duration extra2 = m.jitter > 0 ? rng.next_in(0, m.jitter) : 0;
      enqueue(depart + m.delay + extra2 + 1, dest, datagram);
      stats_.receiver_duplicates += 1;
      metrics_.duplicates.add();
    }
  }
}

std::optional<TimePoint> SimNetwork::next_delivery_time() const {
  if (queue_.empty()) return std::nullopt;
  return queue_.top().at;
}

std::optional<Delivery> SimNetwork::pop_due(TimePoint until) {
  if (queue_.empty() || queue_.top().at > until) return std::nullopt;
  const QueuedDelivery& top = queue_.top();
  Delivery out{top.at, top.dest, top.datagram};
  queue_.pop();
  // A packet already in flight toward a node that crashed meanwhile is lost.
  if (crashed_.contains(out.dest.raw()) || !nodes_.contains(out.dest.raw())) {
    stats_.receiver_drops += 1;
    stats_.receiver_deliveries -= 1;
    metrics_.drops.add();
    return pop_due(until);
  }
  return out;
}

}  // namespace ftcorba::net
