// packet.hpp — the unit the network layer moves around: a datagram addressed
// to an IP-multicast group (Fig. 2's outermost encapsulation layer).
#pragma once

#include "common/bytes.hpp"
#include "common/ids.hpp"

namespace ftcorba::net {

/// One multicast datagram: destination group address + opaque payload
/// (an encoded FTMP message).
struct Datagram {
  McastAddress addr{};
  Bytes payload;
};

}  // namespace ftcorba::net
