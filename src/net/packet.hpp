// packet.hpp — the unit the network layer moves around: a datagram addressed
// to an IP-multicast group (Fig. 2's outermost encapsulation layer).
#pragma once

#include "common/bytes.hpp"
#include "common/ids.hpp"

namespace ftcorba::net {

/// One multicast datagram: destination group address + opaque payload
/// (an encoded FTMP message). The payload is an immutable shared buffer:
/// copying a Datagram — multicast fan-out in the simulator, queueing, the
/// RMP retransmission store — bumps a reference count instead of copying
/// bytes (docs/BUFFERS.md).
struct Datagram {
  McastAddress addr{};
  SharedBytes payload;
};

}  // namespace ftcorba::net
