// udp_multicast.hpp — real IP-Multicast transport over POSIX UDP sockets
// (DESIGN.md S3). The paper's FTMP "operates over IP Multicast"; this class
// provides exactly that substrate for deployments, while tests/benches use
// the deterministic SimNetwork. Both drive the same sans-IO protocol
// stacks.
//
// Address scheme: McastAddress raw value a maps to the administratively
// scoped IPv4 group 239.192.((a >> 8) & 0xFF).(a & 0xFF), one UDP port for
// the whole fault-tolerance domain. One socket is opened per joined group,
// bound to the group address itself so the kernel demultiplexes groups for
// us.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/bytes.hpp"
#include "common/clock.hpp"
#include "common/ids.hpp"
#include "common/metrics.hpp"
#include "net/packet.hpp"

namespace ftcorba::net {

/// Thrown when a socket operation fails irrecoverably (errno text included).
class TransportError : public std::runtime_error {
 public:
  explicit TransportError(const std::string& what) : std::runtime_error(what) {}
};

/// Blocking/poll-based UDP multicast endpoint.
class UdpMulticastTransport {
 public:
  struct Options {
    /// UDP port shared by every group of the domain.
    std::uint16_t port = 30551;
    /// Interface used for sending and joining (loopback works for
    /// same-host multi-process runs).
    std::string interface_ip = "127.0.0.1";
    /// Whether the sender receives its own multicasts (FTMP requires it:
    /// a member orders its own messages through the same path).
    bool loopback = true;
    /// IP TTL for multicasts (1 = link-local).
    int ttl = 1;
  };

  explicit UdpMulticastTransport(Options options);
  ~UdpMulticastTransport();

  UdpMulticastTransport(const UdpMulticastTransport&) = delete;
  UdpMulticastTransport& operator=(const UdpMulticastTransport&) = delete;

  /// Joins a multicast group; subsequent receive() calls can return
  /// datagrams addressed to it. Idempotent.
  void join(McastAddress addr);

  /// Leaves a group and closes its socket.
  void leave(McastAddress addr);

  /// Sends one datagram to the group address.
  void send(const Datagram& datagram);

  /// Sends a burst of datagrams with one sendmmsg(2) syscall on Linux
  /// (falls back to per-datagram send() elsewhere). The egress batching
  /// layer (docs/BATCHING.md) hands the driver several datagrams per drain;
  /// this collapses the per-datagram syscall cost the same way batching
  /// collapses per-datagram wire cost.
  void send_many(const std::vector<Datagram>& datagrams);

  /// Waits up to `timeout` for a datagram on any joined group.
  /// Returns std::nullopt on timeout.
  [[nodiscard]] std::optional<Datagram> receive(Duration timeout);

  /// Waits up to `timeout` for traffic, then drains up to `max_batch`
  /// datagrams per ready group socket with one recvmmsg(2) syscall each on
  /// Linux (single recv fallback elsewhere), into pooled buffers. Returns
  /// an empty vector on timeout.
  [[nodiscard]] std::vector<Datagram> receive_many(Duration timeout,
                                                   std::size_t max_batch = 16);

  /// Dotted-quad group IP for a McastAddress (exposed for logging/tests).
  [[nodiscard]] static std::string group_ip(McastAddress addr);

 private:
  int open_group_socket(McastAddress addr);

  Options options_;
  int send_fd_ = -1;
  std::unordered_map<std::uint32_t, int> group_fds_;  // McastAddress -> fd

  // Process-global instruments (docs/METRICS.md).
  struct Instruments {
    metrics::CounterHandle datagrams_out;
    metrics::CounterHandle bytes_out;
    metrics::CounterHandle datagrams_in;
    metrics::CounterHandle bytes_in;
  };
  Instruments metrics_;
};

}  // namespace ftcorba::net
