// sim_network.hpp — a deterministic discrete-event model of an IP-multicast
// network.
//
// This is the substitute for the paper's LAN testbed (DESIGN.md S2): every
// protocol state machine in this repository is sans-IO, and in tests and
// benchmarks it is driven by this simulator, which provides:
//
//   * best-effort multicast fan-out to all subscribers of an address,
//     including local loopback to the sender (lossless, as on a real host);
//   * per-receiver independent packet loss, delay and jitter, duplication,
//     and reordering (jitter naturally reorders);
//   * crashes and network partitions, for fault-injection tests;
//   * full determinism: equal seeds yield byte-identical runs;
//   * wire statistics (packets/bytes sent, dropped, delivered) that the
//     benchmark harness reports as "network traffic".
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/clock.hpp"
#include "common/ids.hpp"
#include "common/metrics.hpp"
#include "common/rng.hpp"
#include "net/packet.hpp"

namespace ftcorba::net {

/// Fault/latency model of every (sender, receiver) link. Individual links
/// can be overridden via SimNetwork::set_link.
struct LinkModel {
  /// Probability in [0,1] that a given receiver does not get a packet.
  double loss = 0.0;
  /// Probability in [0,1] that a receiver gets a packet twice.
  double duplicate = 0.0;
  /// Fixed one-way propagation + processing delay.
  Duration delay = 100 * kMicrosecond;
  /// Uniform extra delay in [0, jitter] added per packet per receiver.
  /// Jitter > delay gap between packets produces reordering.
  Duration jitter = 20 * kMicrosecond;
  /// Transmit bandwidth per sender in bits/s; 0 = infinite. Each sender's
  /// packets serialize onto its uplink (one transmission per multicast, as
  /// on a shared medium), which is what makes asymmetric protocols — e.g. a
  /// sequencer emitting a ticket per message — saturate realistically.
  double bandwidth_bps = 0;
  /// Fixed per-datagram transmit cost added to the uplink serialization
  /// time, independent of size — models per-packet overhead (interrupt,
  /// syscall, driver ring, inter-frame gap) that makes many small datagrams
  /// slower than one large one, which is exactly what egress batching
  /// (docs/BATCHING.md) trades against. 0 (default) adds nothing and, with
  /// bandwidth_bps == 0, leaves the uplink entirely unserialized so
  /// existing seeded runs are byte-identical.
  Duration per_packet_cost = 0;
  /// Gilbert–Elliott correlated-loss model. When `burst_loss` > 0 the link
  /// is a two-state Markov chain advanced once per packet: in the good
  /// state packets drop with probability `loss`, in the bad state with
  /// `burst_loss`; the chain enters the bad state with `burst_enter` and
  /// leaves it with `burst_exit` per packet. This produces the bursty,
  /// correlated loss real LANs exhibit (and uniform `loss` does not).
  /// burst_loss == 0 (default) disables the model and draws nothing extra
  /// from the link RNG, so existing seeded runs are byte-identical.
  double burst_loss = 0.0;
  double burst_enter = 0.0;  ///< P(good -> bad) per packet.
  double burst_exit = 0.0;   ///< P(bad -> good) per packet.
};

/// A packet due for delivery to one node.
struct Delivery {
  TimePoint at{};
  ProcessorId dest{};
  Datagram datagram;
};

/// Counters describing everything that crossed the simulated wire.
struct WireStats {
  std::uint64_t packets_sent = 0;      ///< send() calls (one per multicast).
  std::uint64_t bytes_sent = 0;        ///< payload bytes across send() calls.
  std::uint64_t receiver_deliveries = 0;  ///< per-receiver handed-up packets.
  std::uint64_t receiver_drops = 0;       ///< per-receiver losses (incl. partition/crash).
  std::uint64_t receiver_duplicates = 0;  ///< extra copies delivered.
};

/// Deterministic discrete-event IP-multicast simulator.
///
/// Usage pattern (see ftmp::SimHarness):
///   net.attach(p); net.subscribe(p, addr);
///   net.send(now, p, datagram);
///   while (auto d = net.pop_due(until)) { ...hand to stack d->dest... }
class SimNetwork {
 public:
  /// Creates a network with the given default link model; `seed` fixes all
  /// random choices (loss, jitter, duplication).
  explicit SimNetwork(LinkModel defaults = {}, std::uint64_t seed = 1);

  /// Registers a node. Idempotent.
  void attach(ProcessorId node);

  /// Removes a node entirely (no further deliveries in or out).
  void detach(ProcessorId node);

  /// Marks a node crashed: packets from/to it vanish. Unlike detach, the
  /// node stays known, and can be revived with `revive`.
  void crash(ProcessorId node);

  /// Clears the crashed flag.
  void revive(ProcessorId node);

  /// True if `node` is currently crashed.
  [[nodiscard]] bool crashed(ProcessorId node) const;

  /// Subscribes a node to a multicast address (IGMP join equivalent).
  void subscribe(ProcessorId node, McastAddress addr);

  /// Unsubscribes a node from a multicast address.
  void unsubscribe(ProcessorId node, McastAddress addr);

  /// Multicasts a datagram from `from` at time `now`. Fan-out, loss, delay
  /// and duplication are decided immediately (deterministically); resulting
  /// deliveries are queued. Loopback to the sender is lossless with minimal
  /// delay, as on a real host with IP_MULTICAST_LOOP.
  void send(TimePoint now, ProcessorId from, const Datagram& datagram);

  /// Splits the network: nodes in different cells cannot exchange packets.
  /// Each inner vector is one cell; nodes absent from every cell implicitly
  /// form one extra shared cell of their own — partitioning off a subset
  /// never silently black-holes the nodes you did not mention (they keep
  /// talking to each other, but to nobody inside a named cell). Pass {} to
  /// heal.
  void set_partition(const std::vector<std::vector<ProcessorId>>& cells);

  /// Heals any partition.
  void heal() { set_partition({}); }

  // ---- one-way (asymmetric) partitions ----
  // A directed block drops every packet `from` sends toward `to` while the
  // reverse direction keeps working — the asymmetric failure mode (half-dead
  // NICs, unidirectional switch faults) symmetric set_partition cannot
  // express. Blocks compose with set_partition: a pair is reachable only if
  // neither mechanism severs it.

  /// Blocks the directed (sender → receiver) pair. Idempotent.
  void block_link(ProcessorId from, ProcessorId to);

  /// Removes a directed block (no-op if absent).
  void unblock_link(ProcessorId from, ProcessorId to);

  /// Removes every directed block.
  void clear_blocked_links();

  /// True if the directed pair is currently blocked.
  [[nodiscard]] bool link_blocked(ProcessorId from, ProcessorId to) const;

  /// Convenience: blocks every directed pair from a member of `from_cell`
  /// toward a member of `to_cell` (a one-way partition cell). Undo with
  /// unblock_link / clear_blocked_links.
  void set_oneway_partition(const std::vector<ProcessorId>& from_cell,
                            const std::vector<ProcessorId>& to_cell);

  /// Overrides the link model for one directed (sender → receiver) pair.
  void set_link(ProcessorId from, ProcessorId to, LinkModel model);

  /// Drops the override for one directed pair (reverts it to the default).
  void clear_link(ProcessorId from, ProcessorId to);

  /// Drops every per-link override (the chaos engine recomputes the full
  /// override set from its active fault list after any change).
  void clear_link_overrides() { link_overrides_.clear(); }

  /// Replaces the default link model for pairs without an override.
  void set_default_link(LinkModel model) { defaults_ = model; }

  /// Time of the earliest queued delivery, if any.
  [[nodiscard]] std::optional<TimePoint> next_delivery_time() const;

  /// Pops the earliest delivery if it is due at or before `until`.
  [[nodiscard]] std::optional<Delivery> pop_due(TimePoint until);

  /// True when no deliveries are queued.
  [[nodiscard]] bool idle() const { return queue_.empty(); }

  /// Wire statistics accumulated since construction (or reset_stats()).
  [[nodiscard]] const WireStats& stats() const { return stats_; }

  /// Zeroes the wire statistics.
  void reset_stats() { stats_ = {}; }

  /// Installs a wire tap invoked once per send() with the sender and the
  /// datagram (before loss is applied). Benches use it to account traffic
  /// per protocol message type.
  void set_tap(std::function<void(TimePoint, ProcessorId, const Datagram&)> tap) {
    tap_ = std::move(tap);
  }

 private:
  struct QueuedDelivery {
    TimePoint at;
    std::uint64_t tie;  // FIFO tie-break for equal timestamps (determinism).
    ProcessorId dest;
    Datagram datagram;
  };
  struct QueueOrder {
    bool operator()(const QueuedDelivery& a, const QueuedDelivery& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.tie > b.tie;
    }
  };
  struct PairHash {
    std::size_t operator()(const std::pair<std::uint32_t, std::uint32_t>& p) const {
      return std::hash<std::uint64_t>{}((std::uint64_t(p.first) << 32) | p.second);
    }
  };

  [[nodiscard]] const LinkModel& link(ProcessorId from, ProcessorId to) const;
  [[nodiscard]] bool reachable(ProcessorId from, ProcessorId to) const;
  [[nodiscard]] Rng& link_rng(ProcessorId from, ProcessorId to);
  void enqueue(TimePoint at, ProcessorId dest, const Datagram& d);

  LinkModel defaults_;
  Rng root_rng_;
  std::unordered_set<std::uint32_t> nodes_;
  std::unordered_set<std::uint32_t> crashed_;
  std::unordered_map<std::uint32_t, std::unordered_set<std::uint32_t>> subs_;  // addr -> nodes
  std::unordered_map<std::pair<std::uint32_t, std::uint32_t>, LinkModel, PairHash> link_overrides_;
  std::unordered_map<std::pair<std::uint32_t, std::uint32_t>, Rng, PairHash> link_rngs_;
  // Gilbert–Elliott per-directed-link burst state (true = bad state).
  std::unordered_map<std::pair<std::uint32_t, std::uint32_t>, bool, PairHash> ge_bad_;
  // Directed (sender, receiver) pairs severed by one-way partitions.
  std::unordered_set<std::uint64_t> blocked_links_;
  std::unordered_map<std::uint32_t, std::uint32_t> partition_cell_;  // node -> cell id
  std::unordered_map<std::uint32_t, TimePoint> uplink_free_at_;  // sender -> time
  bool partitioned_ = false;
  std::priority_queue<QueuedDelivery, std::vector<QueuedDelivery>, QueueOrder> queue_;
  std::uint64_t tie_counter_ = 0;
  WireStats stats_;

  // Process-global instruments mirroring WireStats (docs/METRICS.md);
  // unlike stats_, these aggregate across every SimNetwork in the process
  // and are reset via metrics::reset_all.
  struct Instruments {
    metrics::CounterHandle packets_sent;
    metrics::CounterHandle bytes_sent;
    metrics::CounterHandle deliveries;
    metrics::CounterHandle drops;
    metrics::CounterHandle duplicates;
  };
  Instruments metrics_;
  std::function<void(TimePoint, ProcessorId, const Datagram&)> tap_;
};

}  // namespace ftcorba::net
