#include "net/udp_multicast.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace ftcorba::net {

namespace {
[[noreturn]] void fail(const std::string& op) {
  throw TransportError(op + ": " + std::strerror(errno));
}
}  // namespace

std::string UdpMulticastTransport::group_ip(McastAddress addr) {
  const std::uint32_t raw = addr.raw();
  return "239.192." + std::to_string((raw >> 8) & 0xFF) + "." +
         std::to_string(raw & 0xFF);
}

UdpMulticastTransport::UdpMulticastTransport(Options options)
    : options_(std::move(options)) {
  metrics_.datagrams_out = metrics::counter(
      "net_udp_datagrams_out_total", "Datagrams sent on the UDP multicast driver",
      "datagrams", "net");
  metrics_.bytes_out = metrics::counter(
      "net_udp_bytes_out_total", "Bytes sent on the UDP multicast driver",
      "bytes", "net");
  metrics_.datagrams_in = metrics::counter(
      "net_udp_datagrams_in_total",
      "Datagrams received on the UDP multicast driver", "datagrams", "net");
  metrics_.bytes_in = metrics::counter(
      "net_udp_bytes_in_total", "Bytes received on the UDP multicast driver",
      "bytes", "net");
  send_fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (send_fd_ < 0) fail("socket(send)");

  in_addr iface{};
  if (::inet_pton(AF_INET, options_.interface_ip.c_str(), &iface) != 1) {
    ::close(send_fd_);
    throw TransportError("bad interface ip: " + options_.interface_ip);
  }
  if (::setsockopt(send_fd_, IPPROTO_IP, IP_MULTICAST_IF, &iface, sizeof(iface)) < 0) {
    int saved = errno;
    ::close(send_fd_);
    errno = saved;
    fail("setsockopt(IP_MULTICAST_IF)");
  }
  const unsigned char ttl = static_cast<unsigned char>(options_.ttl);
  (void)::setsockopt(send_fd_, IPPROTO_IP, IP_MULTICAST_TTL, &ttl, sizeof(ttl));
  const unsigned char loop = options_.loopback ? 1 : 0;
  (void)::setsockopt(send_fd_, IPPROTO_IP, IP_MULTICAST_LOOP, &loop, sizeof(loop));
}

UdpMulticastTransport::~UdpMulticastTransport() {
  if (send_fd_ >= 0) ::close(send_fd_);
  for (auto& [addr, fd] : group_fds_) ::close(fd);
}

int UdpMulticastTransport::open_group_socket(McastAddress addr) {
  int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd < 0) fail("socket(recv)");
  const int one = 1;
  (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
#ifdef SO_REUSEPORT
  (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one));
#endif

  sockaddr_in bind_addr{};
  bind_addr.sin_family = AF_INET;
  bind_addr.sin_port = htons(options_.port);
  // Bind to the group address itself so this socket only sees this group.
  if (::inet_pton(AF_INET, group_ip(addr).c_str(), &bind_addr.sin_addr) != 1) {
    ::close(fd);
    throw TransportError("bad group ip");
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&bind_addr), sizeof(bind_addr)) < 0) {
    int saved = errno;
    ::close(fd);
    errno = saved;
    fail("bind(group)");
  }

  ip_mreq mreq{};
  mreq.imr_multiaddr = bind_addr.sin_addr;
  if (::inet_pton(AF_INET, options_.interface_ip.c_str(), &mreq.imr_interface) != 1) {
    ::close(fd);
    throw TransportError("bad interface ip");
  }
  if (::setsockopt(fd, IPPROTO_IP, IP_ADD_MEMBERSHIP, &mreq, sizeof(mreq)) < 0) {
    int saved = errno;
    ::close(fd);
    errno = saved;
    fail("setsockopt(IP_ADD_MEMBERSHIP)");
  }
  return fd;
}

void UdpMulticastTransport::join(McastAddress addr) {
  if (group_fds_.contains(addr.raw())) return;
  group_fds_[addr.raw()] = open_group_socket(addr);
}

void UdpMulticastTransport::leave(McastAddress addr) {
  auto it = group_fds_.find(addr.raw());
  if (it == group_fds_.end()) return;
  ::close(it->second);
  group_fds_.erase(it);
}

void UdpMulticastTransport::send(const Datagram& datagram) {
  sockaddr_in dest{};
  dest.sin_family = AF_INET;
  dest.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, group_ip(datagram.addr).c_str(), &dest.sin_addr) != 1) {
    throw TransportError("bad group ip");
  }
  const ssize_t n =
      ::sendto(send_fd_, datagram.payload.data(), datagram.payload.size(), 0,
               reinterpret_cast<sockaddr*>(&dest), sizeof(dest));
  if (n < 0) fail("sendto");
  metrics_.datagrams_out.add();
  metrics_.bytes_out.add(static_cast<std::uint64_t>(n));
}

void UdpMulticastTransport::send_many(const std::vector<Datagram>& datagrams) {
  if (datagrams.empty()) return;
#ifdef __linux__
  // One syscall for the whole burst: each message carries its own
  // destination group address on the shared send socket.
  std::vector<sockaddr_in> dests(datagrams.size());
  std::vector<iovec> iovs(datagrams.size());
  std::vector<mmsghdr> msgs(datagrams.size());
  for (std::size_t i = 0; i < datagrams.size(); ++i) {
    sockaddr_in& dest = dests[i];
    dest.sin_family = AF_INET;
    dest.sin_port = htons(options_.port);
    if (::inet_pton(AF_INET, group_ip(datagrams[i].addr).c_str(),
                    &dest.sin_addr) != 1) {
      throw TransportError("bad group ip");
    }
    iovs[i].iov_base = const_cast<std::uint8_t*>(datagrams[i].payload.data());
    iovs[i].iov_len = datagrams[i].payload.size();
    msgs[i] = mmsghdr{};
    msgs[i].msg_hdr.msg_name = &dest;
    msgs[i].msg_hdr.msg_namelen = sizeof(dest);
    msgs[i].msg_hdr.msg_iov = &iovs[i];
    msgs[i].msg_hdr.msg_iovlen = 1;
  }
  std::size_t sent = 0;
  while (sent < msgs.size()) {
    const int n = ::sendmmsg(send_fd_, msgs.data() + sent,
                             static_cast<unsigned>(msgs.size() - sent), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail("sendmmsg");
    }
    for (int i = 0; i < n; ++i) {
      metrics_.datagrams_out.add();
      metrics_.bytes_out.add(msgs[sent + std::size_t(i)].msg_len);
    }
    sent += static_cast<std::size_t>(n);
  }
#else
  for (const Datagram& d : datagrams) send(d);
#endif
}

std::optional<Datagram> UdpMulticastTransport::receive(Duration timeout) {
  if (group_fds_.empty()) return std::nullopt;
  std::vector<pollfd> fds;
  std::vector<std::uint32_t> addrs;
  fds.reserve(group_fds_.size());
  for (auto& [addr, fd] : group_fds_) {
    fds.push_back(pollfd{fd, POLLIN, 0});
    addrs.push_back(addr);
  }
  const int timeout_ms =
      static_cast<int>(std::max<Duration>(0, timeout) / kMillisecond);
  const int ready = ::poll(fds.data(), fds.size(), timeout_ms);
  if (ready < 0) {
    if (errno == EINTR) return std::nullopt;
    fail("poll");
  }
  if (ready == 0) return std::nullopt;
  for (std::size_t i = 0; i < fds.size(); ++i) {
    if (!(fds[i].revents & POLLIN)) continue;
    // Pooled receive buffer: the vector's 64 KiB capacity is recycled when
    // the last SharedBytes slice referencing this datagram is released.
    Bytes buf = pool_acquire(65536);
    const ssize_t n = ::recv(fds[i].fd, buf.data(), buf.size(), 0);
    if (n < 0) {
      if (errno == EAGAIN || errno == EINTR) continue;
      fail("recv");
    }
    buf.resize(static_cast<std::size_t>(n));
    metrics_.datagrams_in.add();
    metrics_.bytes_in.add(static_cast<std::uint64_t>(n));
    return Datagram{McastAddress{addrs[i]},
                    SharedBytes::share_pooled(std::move(buf))};
  }
  return std::nullopt;
}

std::vector<Datagram> UdpMulticastTransport::receive_many(Duration timeout,
                                                          std::size_t max_batch) {
  std::vector<Datagram> out;
  if (group_fds_.empty() || max_batch == 0) return out;
  std::vector<pollfd> fds;
  std::vector<std::uint32_t> addrs;
  fds.reserve(group_fds_.size());
  for (auto& [addr, fd] : group_fds_) {
    fds.push_back(pollfd{fd, POLLIN, 0});
    addrs.push_back(addr);
  }
  const int timeout_ms =
      static_cast<int>(std::max<Duration>(0, timeout) / kMillisecond);
  const int ready = ::poll(fds.data(), fds.size(), timeout_ms);
  if (ready < 0) {
    if (errno == EINTR) return out;
    fail("poll");
  }
  if (ready == 0) return out;
  for (std::size_t i = 0; i < fds.size(); ++i) {
    if (!(fds[i].revents & POLLIN)) continue;
#ifdef __linux__
    // Drain the socket with one syscall into pooled 64 KiB buffers; each
    // becomes a zero-copy Datagram payload.
    std::vector<Bytes> bufs;
    std::vector<iovec> iovs(max_batch);
    std::vector<mmsghdr> msgs(max_batch);
    bufs.reserve(max_batch);
    for (std::size_t m = 0; m < max_batch; ++m) {
      bufs.push_back(pool_acquire(65536));
      iovs[m].iov_base = bufs[m].data();
      iovs[m].iov_len = bufs[m].size();
      msgs[m] = mmsghdr{};
      msgs[m].msg_hdr.msg_iov = &iovs[m];
      msgs[m].msg_hdr.msg_iovlen = 1;
    }
    const int n = ::recvmmsg(fds[i].fd, msgs.data(),
                             static_cast<unsigned>(max_batch), MSG_DONTWAIT,
                             nullptr);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) continue;
      fail("recvmmsg");
    }
    for (int m = 0; m < n; ++m) {
      Bytes buf = std::move(bufs[std::size_t(m)]);
      buf.resize(msgs[std::size_t(m)].msg_len);
      metrics_.datagrams_in.add();
      metrics_.bytes_in.add(msgs[std::size_t(m)].msg_len);
      out.push_back(Datagram{McastAddress{addrs[i]},
                             SharedBytes::share_pooled(std::move(buf))});
    }
#else
    Bytes buf = pool_acquire(65536);
    const ssize_t n = ::recv(fds[i].fd, buf.data(), buf.size(), 0);
    if (n < 0) {
      if (errno == EAGAIN || errno == EINTR) continue;
      fail("recv");
    }
    buf.resize(static_cast<std::size_t>(n));
    metrics_.datagrams_in.add();
    metrics_.bytes_in.add(static_cast<std::uint64_t>(n));
    out.push_back(Datagram{McastAddress{addrs[i]},
                           SharedBytes::share_pooled(std::move(buf))});
#endif
  }
  return out;
}

}  // namespace ftcorba::net
