#include "orb/ior.hpp"

namespace ftcorba::orb {

namespace {
constexpr char kPrefix[] = "FTIOR:";
constexpr std::uint8_t kVersion = 1;

[[nodiscard]] int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

std::string to_ior(const GroupObjectRef& ref) {
  giop::CdrWriter profile;
  profile.octet(kVersion);
  profile.ulong_(ref.domain.raw());
  profile.ulong_(ref.object_group.raw());
  profile.ulong_(ref.domain_address.raw());
  profile.octet_seq(ref.key.key);

  giop::CdrWriter outer;
  outer.encapsulation(profile);
  return std::string(kPrefix) + to_hex(outer.bytes());
}

std::optional<GroupObjectRef> from_ior(std::string_view ior) {
  const std::string_view prefix{kPrefix};
  if (ior.substr(0, prefix.size()) != prefix) return std::nullopt;
  const std::string_view hex = ior.substr(prefix.size());
  if (hex.size() % 2 != 0 || hex.empty()) return std::nullopt;

  Bytes raw;
  raw.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = hex_value(hex[i]);
    const int lo = hex_value(hex[i + 1]);
    if (hi < 0 || lo < 0) return std::nullopt;
    raw.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }

  try {
    giop::CdrReader outer(raw);
    giop::CdrReader profile = outer.encapsulation();
    if (!outer.exhausted()) return std::nullopt;
    if (profile.octet() != kVersion) return std::nullopt;
    GroupObjectRef ref;
    ref.domain = FtDomainId{profile.ulong_()};
    ref.object_group = ObjectGroupId{profile.ulong_()};
    ref.domain_address = McastAddress{profile.ulong_()};
    ref.key = ObjectKey{profile.octet_seq()};
    if (!profile.exhausted()) return std::nullopt;
    return ref;
  } catch (const giop::CdrError&) {
    return std::nullopt;
  }
}

}  // namespace ftcorba::orb
