#include "orb/iiop_sim.hpp"

#include "common/codec.hpp"

namespace ftcorba::orb {

namespace {
constexpr std::uint8_t kTcpMagic[4] = {'T', 'C', 'P', 'S'};

struct Segment {
  bool is_ack = false;
  std::uint64_t seq = 0;  // data seq, or cumulative ack (next expected)
  Bytes payload;
};

[[nodiscard]] Bytes encode_segment(const Segment& s) {
  Writer w(ByteOrder::kBig);
  for (std::uint8_t b : kTcpMagic) w.u8(b);
  w.u8(s.is_ack ? 1 : 0);
  w.u64(s.seq);
  w.blob(s.payload);
  return std::move(w).take();
}

[[nodiscard]] std::optional<Segment> decode_segment(BytesView data) {
  try {
    Reader r(data, ByteOrder::kBig);
    for (std::uint8_t expected : kTcpMagic) {
      if (r.u8() != expected) return std::nullopt;
    }
    Segment s;
    s.is_ack = r.u8() == 1;
    s.seq = r.u64();
    s.payload = r.blob();
    if (!r.exhausted()) return std::nullopt;
    return s;
  } catch (const CodecError&) {
    return std::nullopt;
  }
}
}  // namespace

TcpSimEndpoint::TcpSimEndpoint(McastAddress inbox, McastAddress peer_inbox, Duration rto)
    : inbox_(inbox), peer_inbox_(peer_inbox), rto_(rto) {}

void TcpSimEndpoint::emit_segment(std::uint64_t seq, const Bytes& payload, bool is_ack) {
  out_.push_back(net::Datagram{peer_inbox_, encode_segment({is_ack, seq, payload})});
}

void TcpSimEndpoint::send(TimePoint now, BytesView message) {
  const std::uint64_t seq = next_send_seq_++;
  Bytes copy(message.begin(), message.end());
  emit_segment(seq, copy, /*is_ack=*/false);
  unacked_.emplace(seq, std::make_pair(std::move(copy), now));
}

void TcpSimEndpoint::on_datagram(TimePoint now, BytesView payload) {
  auto segment = decode_segment(payload);
  if (!segment) return;
  if (segment->is_ack) {
    // Cumulative: everything below `seq` is acknowledged.
    unacked_.erase(unacked_.begin(), unacked_.lower_bound(segment->seq));
    return;
  }
  if (segment->seq >= next_recv_seq_ && !reorder_.contains(segment->seq)) {
    reorder_.emplace(segment->seq, std::move(segment->payload));
    while (!reorder_.empty() && reorder_.begin()->first == next_recv_seq_) {
      delivered_.push_back(std::move(reorder_.begin()->second));
      reorder_.erase(reorder_.begin());
      ++next_recv_seq_;
    }
  }
  // Ack every data segment (duplicates included, so lost acks heal).
  emit_segment(next_recv_seq_, {}, /*is_ack=*/true);
  (void)now;
}

void TcpSimEndpoint::tick(TimePoint now) {
  for (auto& [seq, entry] : unacked_) {
    auto& [payload, last_tx] = entry;
    if (now - last_tx >= rto_) {
      emit_segment(seq, payload, /*is_ack=*/false);
      last_tx = now;
    }
  }
}

std::vector<net::Datagram> TcpSimEndpoint::take_packets() {
  std::vector<net::Datagram> out;
  out.swap(out_);
  return out;
}

std::vector<Bytes> TcpSimEndpoint::take_delivered() {
  std::vector<Bytes> out;
  out.swap(delivered_);
  return out;
}

IiopEndpoint::IiopEndpoint(McastAddress inbox, McastAddress peer_inbox, ByteOrder byte_order)
    : channel_(inbox, peer_inbox), byte_order_(byte_order) {}

void IiopEndpoint::serve(ObjectKey key, std::shared_ptr<Servant> servant) {
  servants_[std::move(key)] = std::move(servant);
}

std::uint32_t IiopEndpoint::invoke(TimePoint now, const ObjectKey& key,
                                   const std::string& operation,
                                   const giop::CdrWriter& args,
                                   std::function<void(const giop::Reply&)> handler) {
  giop::Request request;
  request.request_id = ++next_request_id_;
  request.response_expected = true;
  request.object_key = key.key;
  request.operation = operation;
  request.body = args.bytes();
  giop::GiopMessage msg;
  msg.header.byte_order = byte_order_;
  msg.body = std::move(request);
  channel_.send(now, giop::encode(msg));
  if (handler) handlers_[next_request_id_] = std::move(handler);
  return next_request_id_;
}

void IiopEndpoint::process_delivered(TimePoint now) {
  for (const Bytes& raw : channel_.take_delivered()) {
    giop::GiopMessage msg;
    try {
      msg = giop::decode(raw);
    } catch (const giop::CdrError&) {
      continue;
    }
    if (const auto* request = std::get_if<giop::Request>(&msg.body)) {
      auto servant = servants_.find(ObjectKey{request->object_key});
      if (servant == servants_.end()) continue;
      giop::CdrReader in(request->body, msg.header.byte_order);
      giop::CdrWriter out(byte_order_);
      giop::ReplyStatus status;
      try {
        status = servant->second->invoke(request->operation, in, out);
      } catch (const std::exception& e) {
        status = giop::ReplyStatus::kSystemException;
        out = giop::CdrWriter(byte_order_);
        out.string(e.what());
      }
      if (!request->response_expected) continue;
      giop::Reply reply;
      reply.request_id = request->request_id;
      reply.status = status;
      reply.body = out.bytes();
      giop::GiopMessage reply_msg;
      reply_msg.header.byte_order = byte_order_;
      reply_msg.body = std::move(reply);
      channel_.send(now, giop::encode(reply_msg));
    } else if (const auto* reply = std::get_if<giop::Reply>(&msg.body)) {
      auto it = handlers_.find(reply->request_id);
      if (it == handlers_.end()) continue;
      auto handler = std::move(it->second);
      handlers_.erase(it);
      handler(*reply);
    }
  }
}

void IiopEndpoint::on_datagram(TimePoint now, BytesView payload) {
  channel_.on_datagram(now, payload);
  process_delivered(now);
}

void IiopEndpoint::tick(TimePoint now) {
  channel_.tick(now);
  process_delivered(now);
}

std::vector<net::Datagram> IiopEndpoint::take_packets() {
  return channel_.take_packets();
}

}  // namespace ftcorba::orb
