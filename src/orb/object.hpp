// object.hpp — object addressing for the mini-ORB: object keys and
// group object references (the IOR-equivalent for a replicated object
// reachable through an FTMP logical connection).
#pragma once

#include <string>

#include "common/bytes.hpp"
#include "common/ids.hpp"

namespace ftcorba::orb {

/// Opaque object key, as carried in GIOP Request/LocateRequest headers.
struct ObjectKey {
  Bytes key;

  ObjectKey() = default;
  explicit ObjectKey(Bytes k) : key(std::move(k)) {}
  explicit ObjectKey(std::string_view s) : key(s.begin(), s.end()) {}

  [[nodiscard]] std::string str() const { return std::string(key.begin(), key.end()); }

  friend bool operator==(const ObjectKey&, const ObjectKey&) = default;
  friend auto operator<=>(const ObjectKey&, const ObjectKey&) = default;
};

/// A reference to a replicated object: which fault-tolerance domain and
/// object group implement it, the object key within the group's servants,
/// and the multicast address of the server domain (what a client needs to
/// open the logical connection).
struct GroupObjectRef {
  FtDomainId domain{};
  ObjectGroupId object_group{};
  McastAddress domain_address{};
  ObjectKey key;

  friend bool operator==(const GroupObjectRef&, const GroupObjectRef&) = default;
};

/// Builds the ConnectionId for an invocation from a client object group to
/// a server object reference (§4: client domain/group + server
/// domain/group).
[[nodiscard]] inline ConnectionId make_connection(FtDomainId client_domain,
                                                  ObjectGroupId client_group,
                                                  const GroupObjectRef& server) {
  return ConnectionId{client_domain, client_group, server.domain, server.object_group};
}

}  // namespace ftcorba::orb

namespace std {
template <>
struct hash<ftcorba::orb::ObjectKey> {
  size_t operator()(const ftcorba::orb::ObjectKey& k) const noexcept {
    size_t h = 1469598103934665603ull;
    for (unsigned char c : k.key) h = (h ^ c) * 1099511628211ull;
    return h;
  }
};
}  // namespace std
