// iiop_sim.hpp — an IIOP-like point-to-point path (DESIGN.md S11): GIOP
// over a reliable, ordered, connection-oriented channel, as between an
// unreplicated CORBA client and server. This is the baseline FTMP is
// compared against in bench E6 ("Just as CORBA's IIOP maintains a physical
// connection ... using TCP/IP, FTMP maintains a logical connection between
// ... object groups", §4).
//
// The channel is a miniature TCP built over the same lossy SimNetwork the
// FTMP stacks use: per-direction sequence numbers, cumulative
// acknowledgments, and timer-driven retransmission — enough to be a fair
// reliable-transport comparator under identical network conditions.
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <optional>

#include "common/bytes.hpp"
#include "common/clock.hpp"
#include "common/ids.hpp"
#include "giop/messages.hpp"
#include "net/packet.hpp"
#include "orb/object.hpp"
#include "orb/servant.hpp"

namespace ftcorba::orb {

/// One endpoint of a reliable message channel between two processors.
/// Sans-IO, like everything else: feed on_datagram/tick, drain
/// take_packets/take_delivered.
class TcpSimEndpoint {
 public:
  /// `inbox` is the (unicast-emulating) multicast address this endpoint
  /// listens on; `peer_inbox` is where it sends.
  TcpSimEndpoint(McastAddress inbox, McastAddress peer_inbox,
                 Duration rto = 20 * kMillisecond);

  /// Queues one message for reliable in-order delivery to the peer.
  void send(TimePoint now, BytesView message);

  /// Feeds a datagram received on `inbox`.
  void on_datagram(TimePoint now, BytesView payload);

  /// Retransmits unacknowledged segments past their RTO.
  void tick(TimePoint now);

  /// Drains datagrams to transmit (all addressed to the peer's inbox).
  [[nodiscard]] std::vector<net::Datagram> take_packets();

  /// Drains messages delivered in order.
  [[nodiscard]] std::vector<Bytes> take_delivered();

  /// Segments currently awaiting acknowledgment.
  [[nodiscard]] std::size_t unacked() const { return unacked_.size(); }

 private:
  void emit_segment(std::uint64_t seq, const Bytes& payload, bool is_ack);

  McastAddress inbox_;
  McastAddress peer_inbox_;
  Duration rto_;
  std::uint64_t next_send_seq_ = 1;
  std::uint64_t next_recv_seq_ = 1;
  std::map<std::uint64_t, std::pair<Bytes, TimePoint>> unacked_;  // seq -> (msg, last tx)
  std::map<std::uint64_t, Bytes> reorder_;
  std::vector<net::Datagram> out_;
  std::vector<Bytes> delivered_;
};

/// A point-to-point GIOP endpoint over TcpSimEndpoint: a minimal IIOP
/// client/server. One side activates a servant; the other invokes.
class IiopEndpoint {
 public:
  IiopEndpoint(McastAddress inbox, McastAddress peer_inbox,
               ByteOrder byte_order = ByteOrder::kBig);

  /// Server side: the servant answering requests at this endpoint.
  void serve(ObjectKey key, std::shared_ptr<Servant> servant);

  /// Client side: marshals and sends a Request; `handler` runs when the
  /// Reply arrives. Returns the request id.
  std::uint32_t invoke(TimePoint now, const ObjectKey& key, const std::string& operation,
                       const giop::CdrWriter& args,
                       std::function<void(const giop::Reply&)> handler);

  /// IO plumbing (same shape as the FTMP drivers).
  void on_datagram(TimePoint now, BytesView payload);
  void tick(TimePoint now);
  [[nodiscard]] std::vector<net::Datagram> take_packets();

  /// Invocations awaiting replies.
  [[nodiscard]] std::size_t pending() const { return handlers_.size(); }

 private:
  void process_delivered(TimePoint now);

  TcpSimEndpoint channel_;
  ByteOrder byte_order_;
  std::map<ObjectKey, std::shared_ptr<Servant>> servants_;
  std::uint32_t next_request_id_ = 0;
  std::map<std::uint32_t, std::function<void(const giop::Reply&)>> handlers_;
};

}  // namespace ftcorba::orb
