// ior.hpp — stringified group object references. Real CORBA passes IORs
// ("IOR:<hex of a CDR encapsulation>") between processes; the equivalent
// here is a reference to a *replicated* object: the fault-tolerance
// domain, the object group, the domain's multicast address (what a client
// needs to send a ConnectRequest) and the object key.
//
// Format: "FTIOR:" + lowercase hex of a CDR encapsulation containing a
// version octet and the four fields. The encapsulation carries its own
// byte order, exactly like a real IOR profile.
#pragma once

#include <optional>
#include <string>

#include "giop/cdr.hpp"
#include "orb/object.hpp"

namespace ftcorba::orb {

/// Stringifies a group object reference.
[[nodiscard]] std::string to_ior(const GroupObjectRef& ref);

/// Parses a stringified reference; nullopt on any malformed input
/// (wrong prefix, bad hex, truncated encapsulation, unknown version).
[[nodiscard]] std::optional<GroupObjectRef> from_ior(std::string_view ior);

}  // namespace ftcorba::orb
