// orb.hpp — the mini-ORB (DESIGN.md S11): maps GIOP invocations onto FTMP
// logical connections, exactly the concrete GIOP->FTMP mapping the paper
// contributes.
//
// Server side: servants are activated under object keys; every delivered
// GIOP Request (after duplicate suppression) is dispatched in total order
// and the marshaled Reply is multicast back on the same connection with
// the same request number.
//
// Client side: invoke() marshals a Request, assigns the next request
// number on the connection (all client replicas issue the same
// deterministic sequence, so they use the same numbers, §4), multicasts it
// and registers a completion handler keyed by request number; the first
// delivered Reply copy completes it, later copies are suppressed.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>

#include "common/metrics.hpp"
#include "ft/dedup.hpp"
#include "ft/message_log.hpp"
#include "ftmp/events.hpp"
#include "ftmp/stack.hpp"
#include "giop/cdr.hpp"
#include "giop/messages.hpp"
#include "orb/object.hpp"
#include "orb/servant.hpp"

namespace ftcorba::orb {

/// Counters for tests and the E6 bench.
struct OrbStats {
  std::uint64_t requests_dispatched = 0;   ///< servant invocations executed
  std::uint64_t replies_completed = 0;     ///< client invocations completed
  std::uint64_t duplicates_suppressed = 0; ///< replica copies discarded
  std::uint64_t undecodable_payloads = 0;  ///< non-GIOP Regular bodies dropped
  std::uint64_t unknown_objects = 0;       ///< Requests for unregistered keys
  std::uint64_t requests_deferred = 0;     ///< invocations refused under backpressure
};

/// The per-processor ORB, layered over one FTMP stack.
class Orb {
 public:
  /// `byte_order` is used for this ORB's outgoing GIOP messages.
  explicit Orb(ftmp::Stack& stack, ByteOrder byte_order = ByteOrder::kBig);

  // ---- server side ----

  /// Activates `servant` under `key`: delivered Requests whose object key
  /// matches are dispatched to it.
  void activate(const ObjectKey& key, std::shared_ptr<Servant> servant);

  /// Removes the servant under `key`.
  void deactivate(const ObjectKey& key);

  // ---- client side ----

  /// Called with the decoded Reply when the invocation completes; the
  /// second argument is the byte order the reply body was marshaled in.
  using ReplyHandler = std::function<void(const giop::Reply&, ByteOrder)>;

  /// Invokes `operation` on the object behind `connection`/`key` with the
  /// marshaled arguments in `args`. Returns the request number, or nullopt
  /// if the connection was not ready — or if the connection's group is
  /// over its flow-control high watermark (the invocation is *deferred*:
  /// no request number is consumed; retry once pressure drains, e.g. after
  /// a FlowSignal::kQueueLow). With `response_expected` false the call is
  /// oneway (no handler is retained).
  std::optional<RequestNum> invoke(TimePoint now, const ConnectionId& connection,
                                   const ObjectKey& key, const std::string& operation,
                                   const giop::CdrWriter& args, ReplyHandler handler,
                                   bool response_expected = true);

  /// Sends a LocateRequest for `key` on the connection; the handler
  /// receives the LocateReply status.
  std::optional<RequestNum> locate(TimePoint now, const ConnectionId& connection,
                                   const ObjectKey& key,
                                   std::function<void(giop::LocateStatus)> handler);

  /// Sends a GIOP CancelRequest for a pending invocation and drops its
  /// handler locally. The reply may still arrive and is then discarded.
  bool cancel(TimePoint now, const ConnectionId& connection, RequestNum request_num);

  /// Arms a deadline for a pending invocation: if no reply completes it by
  /// `deadline`, the next expire() call drops the handler and runs
  /// `on_timeout` instead.
  void set_deadline(const ConnectionId& connection, RequestNum request_num,
                    TimePoint deadline, std::function<void()> on_timeout);

  /// Fires every armed deadline at or before `now`; returns how many
  /// invocations timed out. Call periodically (e.g. from the driver loop).
  std::size_t expire(TimePoint now);

  /// Number of invocations still awaiting a reply.
  [[nodiscard]] std::size_t pending_invocations() const { return handlers_.size(); }

  // ---- event pump ----

  /// Feeds one FTMP event (wire this to the stack driver). Only
  /// DeliveredMessage events are consumed; everything else is ignored here.
  void on_event(TimePoint now, const ftmp::Event& event);

  /// The duplicate suppressor (exposed for tests and the E6 bench).
  [[nodiscard]] const ft::DuplicateSuppressor& dedup() const { return dedup_; }

  /// Attaches a message log (§4): every accepted Request/Reply delivery is
  /// recorded with its ⟨connection id, request number⟩ so state can be
  /// rebuilt by replay (ft::replay_requests). Pass nullptr to detach.
  void attach_log(ft::MessageLog* log) { log_ = log; }

  [[nodiscard]] const OrbStats& stats() const { return stats_; }

  /// The underlying stack.
  [[nodiscard]] ftmp::Stack& stack() { return stack_; }

 private:
  void handle_request(TimePoint now, const ftmp::DeliveredMessage& dm,
                      const giop::Request& request, ByteOrder arg_order);
  void handle_reply(TimePoint now, const giop::Reply& reply,
                    const ftmp::DeliveredMessage& dm, ByteOrder body_order);
  void handle_locate_request(TimePoint now, const ftmp::DeliveredMessage& dm,
                             const giop::LocateRequest& request);

  [[nodiscard]] RequestNum next_request_num(const ConnectionId& connection);

  ftmp::Stack& stack_;
  ByteOrder byte_order_;
  std::unordered_map<ObjectKey, std::shared_ptr<Servant>> servants_;
  std::map<ConnectionId, RequestNum> request_counters_;
  std::map<std::pair<ConnectionId, RequestNum>, ReplyHandler> handlers_;
  std::map<std::pair<ConnectionId, RequestNum>, std::function<void(giop::LocateStatus)>>
      locate_handlers_;
  std::map<std::pair<ConnectionId, RequestNum>, std::pair<TimePoint, std::function<void()>>>
      deadlines_;
  // Send time of each pending invocation, for the request→reply latency
  // histogram; entries leave with their handler (reply/cancel/expire).
  std::map<std::pair<ConnectionId, RequestNum>, TimePoint> sent_at_;
  ft::DuplicateSuppressor dedup_;
  ft::MessageLog* log_ = nullptr;
  OrbStats stats_;

  // Process-global instruments (docs/METRICS.md).
  struct Instruments {
    metrics::CounterHandle requests_dispatched;
    metrics::CounterHandle replies_completed;
    metrics::CounterHandle duplicates_suppressed;
    metrics::CounterHandle undecodable;
    metrics::CounterHandle unknown_objects;
    metrics::CounterHandle requests_deferred;
    metrics::HistogramHandle request_reply_ms;
  };
  Instruments metrics_;
};

}  // namespace ftcorba::orb
