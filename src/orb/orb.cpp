#include "orb/orb.hpp"

#include "common/log.hpp"

namespace ftcorba::orb {

Orb::Orb(ftmp::Stack& stack, ByteOrder byte_order)
    : stack_(stack), byte_order_(byte_order) {
  metrics_.requests_dispatched = metrics::counter(
      "giop_requests_dispatched_total", "Servant invocations executed",
      "requests", "giop");
  metrics_.replies_completed = metrics::counter(
      "giop_replies_completed_total", "Client invocations completed by a reply",
      "replies", "giop");
  metrics_.duplicates_suppressed = metrics::counter(
      "giop_duplicates_suppressed_total",
      "Replica request/reply copies discarded by the ORB", "messages", "giop");
  metrics_.undecodable = metrics::counter(
      "giop_undecodable_payloads_total",
      "Delivered Regular bodies that failed GIOP decoding", "messages", "giop");
  metrics_.unknown_objects = metrics::counter(
      "giop_unknown_objects_total",
      "Requests delivered for object keys with no local servant", "requests",
      "giop");
  metrics_.requests_deferred = metrics::counter(
      "giop_requests_deferred_total",
      "Client invocations refused while the connection's group was over its "
      "flow-control high watermark",
      "requests", "giop");
  metrics_.request_reply_ms = metrics::histogram(
      "giop_request_reply_latency_ms",
      "Invoke-to-reply completion latency through the full FTMP stack", "ms",
      "giop", metrics::latency_buckets_ms());
}

void Orb::activate(const ObjectKey& key, std::shared_ptr<Servant> servant) {
  servants_[key] = std::move(servant);
}

void Orb::deactivate(const ObjectKey& key) { servants_.erase(key); }

RequestNum Orb::next_request_num(const ConnectionId& connection) {
  return ++request_counters_[connection];
}

std::optional<RequestNum> Orb::invoke(TimePoint now, const ConnectionId& connection,
                                      const ObjectKey& key, const std::string& operation,
                                      const giop::CdrWriter& args, ReplyHandler handler,
                                      bool response_expected) {
  if (stack_.connection_congested(connection)) {
    // Backpressure (docs/FLOW.md): the group's flow queue is over its high
    // watermark; multicasting more would only deepen it. No request number
    // is consumed, so replicas that defer at different moments stay aligned.
    stats_.requests_deferred += 1;
    metrics_.requests_deferred.add();
    return std::nullopt;
  }
  giop::Request request;
  const RequestNum num = next_request_num(connection);
  request.request_id = static_cast<std::uint32_t>(num);
  request.response_expected = response_expected;
  request.object_key = key.key;
  request.operation = operation;
  request.body = args.bytes();

  giop::GiopMessage msg;
  msg.header.byte_order = byte_order_;
  msg.body = std::move(request);
  const Bytes giop_bytes = giop::encode(msg);

  if (!stack_.send(now, connection, num, giop_bytes)) {
    request_counters_[connection] -= 1;  // keep replicas' numbering aligned
    return std::nullopt;
  }
  if (response_expected && handler) {
    handlers_[{connection, num}] = std::move(handler);
    sent_at_[{connection, num}] = now;
  }
  return num;
}

std::optional<RequestNum> Orb::locate(TimePoint now, const ConnectionId& connection,
                                      const ObjectKey& key,
                                      std::function<void(giop::LocateStatus)> handler) {
  if (stack_.connection_congested(connection)) {
    stats_.requests_deferred += 1;
    metrics_.requests_deferred.add();
    return std::nullopt;
  }
  giop::LocateRequest request;
  const RequestNum num = next_request_num(connection);
  request.request_id = static_cast<std::uint32_t>(num);
  request.object_key = key.key;

  giop::GiopMessage msg;
  msg.header.byte_order = byte_order_;
  msg.body = std::move(request);
  if (!stack_.send(now, connection, num, giop::encode(msg))) {
    request_counters_[connection] -= 1;
    return std::nullopt;
  }
  if (handler) locate_handlers_[{connection, num}] = std::move(handler);
  return num;
}

void Orb::on_event(TimePoint now, const ftmp::Event& event) {
  const auto* dm = std::get_if<ftmp::DeliveredMessage>(&event);
  if (!dm) return;

  giop::GiopMessage msg;
  try {
    msg = giop::decode(dm->giop_message);
  } catch (const giop::CdrError& e) {
    stats_.undecodable_payloads += 1;
    metrics_.undecodable.add();
    FTC_LOG(kDebug) << "orb: undecodable GIOP payload: " << e.what();
    return;
  }

  switch (msg.header.type) {
    case giop::MsgType::kRequest:
      if (!dedup_.accept(dm->connection, dm->request_num, ft::MessageKind::kRequest)) {
        stats_.duplicates_suppressed += 1;
        metrics_.duplicates_suppressed.add();
        return;
      }
      if (log_) {
        log_->record(ft::LogEntry{ft::MessageKind::kRequest, dm->connection,
                                  dm->request_num, dm->timestamp, dm->giop_message});
      }
      handle_request(now, *dm, std::get<giop::Request>(msg.body),
                     msg.header.byte_order);
      break;
    case giop::MsgType::kLocateRequest:
      if (!dedup_.accept(dm->connection, dm->request_num, ft::MessageKind::kRequest)) {
        stats_.duplicates_suppressed += 1;
        metrics_.duplicates_suppressed.add();
        return;
      }
      handle_locate_request(now, *dm, std::get<giop::LocateRequest>(msg.body));
      break;
    case giop::MsgType::kReply:
      if (!dedup_.accept(dm->connection, dm->request_num, ft::MessageKind::kReply)) {
        stats_.duplicates_suppressed += 1;
        metrics_.duplicates_suppressed.add();
        return;
      }
      if (log_) {
        log_->record(ft::LogEntry{ft::MessageKind::kReply, dm->connection,
                                  dm->request_num, dm->timestamp, dm->giop_message});
      }
      handle_reply(now, std::get<giop::Reply>(msg.body), *dm, msg.header.byte_order);
      break;
    case giop::MsgType::kLocateReply: {
      if (!dedup_.accept(dm->connection, dm->request_num, ft::MessageKind::kReply)) {
        stats_.duplicates_suppressed += 1;
        metrics_.duplicates_suppressed.add();
        return;
      }
      auto it = locate_handlers_.find({dm->connection, dm->request_num});
      if (it != locate_handlers_.end()) {
        auto handler = std::move(it->second);
        locate_handlers_.erase(it);
        handler(std::get<giop::LocateReply>(msg.body).status);
      }
      break;
    }
    case giop::MsgType::kCancelRequest: {
      // Best-effort: drop any still-pending handler for the request.
      const auto& body = std::get<giop::CancelRequest>(msg.body);
      handlers_.erase({dm->connection, RequestNum{body.request_id}});
      sent_at_.erase({dm->connection, RequestNum{body.request_id}});
      break;
    }
    default:
      break;  // CloseConnection / MessageError / Fragment: no dispatch
  }
}

void Orb::set_deadline(const ConnectionId& connection, RequestNum request_num,
                       TimePoint deadline, std::function<void()> on_timeout) {
  deadlines_[{connection, request_num}] = {deadline, std::move(on_timeout)};
}

std::size_t Orb::expire(TimePoint now) {
  std::size_t fired = 0;
  for (auto it = deadlines_.begin(); it != deadlines_.end();) {
    if (it->second.first > now) {
      ++it;
      continue;
    }
    // Only a still-pending invocation can time out.
    const bool pending =
        handlers_.contains(it->first) || locate_handlers_.contains(it->first);
    auto on_timeout = std::move(it->second.second);
    handlers_.erase(it->first);
    locate_handlers_.erase(it->first);
    sent_at_.erase(it->first);
    it = deadlines_.erase(it);
    if (pending) {
      ++fired;
      if (on_timeout) on_timeout();
    }
  }
  return fired;
}

bool Orb::cancel(TimePoint now, const ConnectionId& connection, RequestNum request_num) {
  const auto key = std::make_pair(connection, request_num);
  handlers_.erase(key);
  locate_handlers_.erase(key);
  deadlines_.erase(key);
  sent_at_.erase(key);
  giop::CancelRequest body;
  body.request_id = static_cast<std::uint32_t>(request_num);
  giop::GiopMessage msg;
  msg.header.byte_order = byte_order_;
  msg.body = body;
  return stack_.send(now, connection, request_num, giop::encode(msg));
}

void Orb::handle_request(TimePoint now, const ftmp::DeliveredMessage& dm,
                         const giop::Request& request, ByteOrder arg_order) {
  auto servant = servants_.find(ObjectKey{request.object_key});
  if (servant == servants_.end()) {
    // Delivered to both groups (§4): the client group legitimately sees the
    // request too and simply has no servant for it.
    stats_.unknown_objects += 1;
    metrics_.unknown_objects.add();
    return;
  }
  // Arguments were marshaled in the sender's GIOP byte order.
  giop::CdrReader args(request.body, arg_order);
  giop::CdrWriter results(byte_order_);
  giop::ReplyStatus status;
  try {
    status = servant->second->invoke(request.operation, args, results);
  } catch (const std::exception& e) {
    status = giop::ReplyStatus::kSystemException;
    results = giop::CdrWriter(byte_order_);
    results.string(e.what());
  }
  stats_.requests_dispatched += 1;
  metrics_.requests_dispatched.add();
  if (!request.response_expected || servant->second->suppress_reply()) return;

  giop::Reply reply;
  reply.request_id = request.request_id;
  reply.status = status;
  reply.body = results.bytes();
  giop::GiopMessage msg;
  msg.header.byte_order = byte_order_;
  msg.body = std::move(reply);
  // Same connection id and request number as the request (§4): the pair
  // also matches the reply to the request when replaying from a log.
  (void)stack_.send(now, dm.connection, dm.request_num, giop::encode(msg));
}

void Orb::handle_locate_request(TimePoint now, const ftmp::DeliveredMessage& dm,
                                const giop::LocateRequest& request) {
  const bool here = servants_.contains(ObjectKey{request.object_key});
  // Only processors hosting servants answer; the client group stays silent.
  if (!here) return;
  giop::LocateReply reply;
  reply.request_id = request.request_id;
  reply.status = giop::LocateStatus::kObjectHere;
  giop::GiopMessage msg;
  msg.header.byte_order = byte_order_;
  msg.body = std::move(reply);
  (void)stack_.send(now, dm.connection, dm.request_num, giop::encode(msg));
}

void Orb::handle_reply(TimePoint now, const giop::Reply& reply,
                       const ftmp::DeliveredMessage& dm, ByteOrder body_order) {
  auto it = handlers_.find({dm.connection, dm.request_num});
  if (it == handlers_.end()) return;  // server replicas see replies too (§4)
  auto handler = std::move(it->second);
  handlers_.erase(it);
  deadlines_.erase({dm.connection, dm.request_num});
  if (auto sent = sent_at_.find({dm.connection, dm.request_num});
      sent != sent_at_.end()) {
    metrics_.request_reply_ms.observe(to_ms(now - sent->second));
    sent_at_.erase(sent);
  }
  stats_.replies_completed += 1;
  metrics_.replies_completed.add();
  handler(reply, body_order);
}

}  // namespace ftcorba::orb
