// servant.hpp — the server-side dispatch interface of the mini-ORB.
#pragma once

#include <string>

#include "giop/cdr.hpp"
#include "giop/messages.hpp"

namespace ftcorba::orb {

/// A CORBA servant: implements the operations of one object (or of every
/// replica of one object group — with active replication the same servant
/// code runs on every member and must be deterministic).
class Servant {
 public:
  virtual ~Servant() = default;

  /// Executes `operation`. Unmarshals in/inout arguments from `in` and
  /// marshals results into `out`. Returns the reply status; for
  /// kUserException / kSystemException the exception data goes in `out`.
  virtual giop::ReplyStatus invoke(const std::string& operation,
                                   giop::CdrReader& in, giop::CdrWriter& out) = 0;

  /// When true the ORB dispatches invocations but never sends replies.
  /// Used by recovering replicas that observe the ordered request stream
  /// without yet knowing the results (ft::BufferingServant).
  [[nodiscard]] virtual bool suppress_reply() const { return false; }
};

}  // namespace ftcorba::orb
