// sequencer.hpp — fixed-sequencer total-order broadcast (the Amoeba /
// Chang-Maxemchuk family the paper's §8 cites): senders multicast their
// data; a designated sequencer multicasts ordering tickets mapping
// ⟨source, local seq⟩ to a global sequence; receivers deliver data in
// global-sequence order. Reliability is NACK-based on both the data and
// the ticket streams.
//
// The sequencer is the throughput bottleneck and a single point of failure
// — precisely the contrast with FTMP's symmetric ordering that benches
// E2/E9 quantify. (No sequencer fail-over is implemented; baselines are
// evaluated fault-free.)
#pragma once

#include <map>
#include <optional>
#include <set>
#include <unordered_map>

#include "baseline/common.hpp"
#include "common/codec.hpp"

namespace ftcorba::baseline {

/// Wire statistics of one node (ordering cost accounting for E9).
struct SequencerStats {
  std::uint64_t data_sent = 0;
  std::uint64_t tickets_sent = 0;
  std::uint64_t nacks_sent = 0;
  std::uint64_t retransmissions = 0;
};

/// One member of a fixed-sequencer ordered-broadcast group. The member
/// with the smallest id acts as sequencer.
class SequencerNode : public TotalOrderNode {
 public:
  /// `members` must be identical at every node; `group_addr` is the
  /// multicast address the group shares.
  SequencerNode(ProcessorId self, std::vector<ProcessorId> members,
                McastAddress group_addr, Duration nack_interval = 5 * kMillisecond);

  void broadcast(TimePoint now, BytesView payload) override;
  void on_datagram(TimePoint now, const net::Datagram& datagram) override;
  void tick(TimePoint now) override;
  [[nodiscard]] std::vector<net::Datagram> take_packets() override;
  [[nodiscard]] std::vector<Delivery> take_deliveries() override;

  /// True if this node is the sequencer.
  [[nodiscard]] bool is_sequencer() const { return self_ == sequencer_; }

  [[nodiscard]] const SequencerStats& stats() const { return stats_; }

 private:
  struct DataKey {
    std::uint32_t source;
    std::uint64_t local_seq;
    auto operator<=>(const DataKey&) const = default;
  };

  void send_data(TimePoint now, ProcessorId source, std::uint64_t local_seq,
                 const Bytes& payload, bool retransmission);
  void send_ticket(std::uint64_t global_seq, ProcessorId source, std::uint64_t local_seq);
  void sequence_pending(TimePoint now);
  void try_deliver();
  void request_missing(TimePoint now);

  ProcessorId self_;
  std::vector<ProcessorId> members_;
  ProcessorId sequencer_;
  McastAddress group_addr_;
  Duration nack_interval_;

  std::uint64_t next_local_seq_ = 0;
  // Received data payloads by (source, local seq).
  std::map<DataKey, Bytes> data_;
  // Ticket stream: global seq -> (source, local seq).
  std::map<std::uint64_t, DataKey> tickets_;
  std::uint64_t next_deliver_ = 1;   // next global seq to deliver
  std::uint64_t highest_ticket_ = 0; // for ticket-gap NACKs
  // Sequencer state: next global seq to assign, and data seen but not yet
  // sequenced (per source, the next local seq to sequence).
  std::uint64_t next_global_ = 1;
  std::unordered_map<std::uint32_t, std::uint64_t> sequenced_up_to_;
  // Per source: the highest local seq known to be ticketed (from tickets).
  std::unordered_map<std::uint32_t, std::uint64_t> ticketed_up_to_;
  TimePoint last_nack_ = -1'000'000'000;
  TimePoint last_reannounce_ = -1'000'000'000;

  std::vector<net::Datagram> out_;
  std::vector<Delivery> delivered_;
  SequencerStats stats_;
};

}  // namespace ftcorba::baseline
