// common.hpp — shared interface of the related-work total-order baselines
// (§8): a sequencer-based protocol (Amoeba family) and a rotating-token
// protocol (Totem family). Both run over the same SimNetwork as FTMP so
// the E2/E9 benches compare algorithms, not substrates.
#pragma once

#include <memory>

#include "common/bytes.hpp"
#include "common/clock.hpp"
#include "common/ids.hpp"
#include "net/packet.hpp"

namespace ftcorba::baseline {

/// One totally-ordered delivery at a node.
struct Delivery {
  ProcessorId source{};
  std::uint64_t global_seq = 0;
  Bytes payload;
};

/// Sans-IO endpoint of a total-order broadcast protocol. The driver feeds
/// datagrams/ticks and drains packets/deliveries, exactly like the FTMP
/// stack drivers.
class TotalOrderNode {
 public:
  virtual ~TotalOrderNode() = default;

  /// Queues one payload for totally-ordered broadcast to the group.
  virtual void broadcast(TimePoint now, BytesView payload) = 0;

  /// Feeds one received datagram.
  virtual void on_datagram(TimePoint now, const net::Datagram& datagram) = 0;

  /// Advances protocol timers.
  virtual void tick(TimePoint now) = 0;

  /// Drains datagrams to transmit.
  [[nodiscard]] virtual std::vector<net::Datagram> take_packets() = 0;

  /// Drains totally-ordered deliveries.
  [[nodiscard]] virtual std::vector<Delivery> take_deliveries() = 0;
};

}  // namespace ftcorba::baseline
