#include "baseline/harness.hpp"

namespace ftcorba::baseline {

BaselineHarness::BaselineHarness(net::LinkModel link, std::uint64_t seed,
                                 Duration granularity)
    : net_(link, seed), granularity_(granularity), next_tick_(granularity) {}

void BaselineHarness::add_node(ProcessorId id, McastAddress addr,
                               std::unique_ptr<TotalOrderNode> node) {
  net_.attach(id);
  net_.subscribe(id, addr);
  nodes_.emplace(id, std::move(node));
  delivered_.emplace(id, std::vector<TimedDelivery>{});
  flush(id);
}

void BaselineHarness::broadcast(ProcessorId id, BytesView payload) {
  nodes_.at(id)->broadcast(now_, payload);
  flush(id);
}

void BaselineHarness::flush(ProcessorId id) {
  TotalOrderNode& n = *nodes_.at(id);
  for (net::Datagram& d : n.take_packets()) {
    net_.send(now_, id, d);
  }
  auto& sink = delivered_.at(id);
  for (Delivery& d : n.take_deliveries()) {
    sink.push_back(TimedDelivery{now_, std::move(d)});
  }
}

void BaselineHarness::run_until(TimePoint t) {
  while (now_ < t) {
    const auto next_delivery = net_.next_delivery_time();
    TimePoint step = std::min<TimePoint>(t, next_tick_);
    if (next_delivery && *next_delivery < step) step = *next_delivery;
    now_ = std::max(now_, step);

    while (auto d = net_.pop_due(now_)) {
      auto it = nodes_.find(d->dest);
      if (it == nodes_.end()) continue;
      it->second->on_datagram(now_, d->datagram);
      flush(d->dest);
    }
    if (now_ >= next_tick_) {
      for (auto& [id, n] : nodes_) {
        n->tick(now_);
        flush(id);
      }
      next_tick_ += granularity_;
    }
  }
  now_ = t;
}

void BaselineHarness::clear_deliveries() {
  for (auto& [id, v] : delivered_) v.clear();
}

}  // namespace ftcorba::baseline
