#include "baseline/sequencer.hpp"

#include <algorithm>

namespace ftcorba::baseline {

namespace {
constexpr std::uint8_t kMagic[4] = {'S', 'E', 'Q', 'B'};
enum : std::uint8_t { kData = 1, kTicket = 2, kNack = 3 };
enum : std::uint8_t { kNackData = 1, kNackTicket = 2 };
}  // namespace

SequencerNode::SequencerNode(ProcessorId self, std::vector<ProcessorId> members,
                             McastAddress group_addr, Duration nack_interval)
    : self_(self),
      members_(std::move(members)),
      group_addr_(group_addr),
      nack_interval_(nack_interval) {
  std::sort(members_.begin(), members_.end());
  sequencer_ = members_.front();
}

void SequencerNode::send_data(TimePoint now, ProcessorId source, std::uint64_t local_seq,
                              const Bytes& payload, bool retransmission) {
  (void)now;
  Writer w;
  for (std::uint8_t b : kMagic) w.u8(b);
  w.u8(kData);
  w.u32(source.raw());
  w.u64(local_seq);
  w.blob(payload);
  out_.push_back(net::Datagram{group_addr_, std::move(w).take()});
  if (retransmission) {
    stats_.retransmissions += 1;
  } else {
    stats_.data_sent += 1;
  }
}

void SequencerNode::send_ticket(std::uint64_t global_seq, ProcessorId source,
                                std::uint64_t local_seq) {
  Writer w;
  for (std::uint8_t b : kMagic) w.u8(b);
  w.u8(kTicket);
  w.u64(global_seq);
  w.u32(source.raw());
  w.u64(local_seq);
  out_.push_back(net::Datagram{group_addr_, std::move(w).take()});
  stats_.tickets_sent += 1;
}

void SequencerNode::broadcast(TimePoint now, BytesView payload) {
  const std::uint64_t local_seq = ++next_local_seq_;
  Bytes copy(payload.begin(), payload.end());
  data_[{self_.raw(), local_seq}] = copy;
  send_data(now, self_, local_seq, copy, /*retransmission=*/false);
  if (is_sequencer()) sequence_pending(now);
}

void SequencerNode::sequence_pending(TimePoint now) {
  (void)now;
  if (!is_sequencer()) return;
  bool progress = true;
  while (progress) {
    progress = false;
    for (ProcessorId m : members_) {
      std::uint64_t& up_to = sequenced_up_to_[m.raw()];
      auto it = data_.find({m.raw(), up_to + 1});
      if (it != data_.end()) {
        up_to += 1;
        const std::uint64_t global = next_global_++;
        tickets_[global] = it->first;
        highest_ticket_ = std::max(highest_ticket_, global);
        send_ticket(global, m, up_to);
        progress = true;
      }
    }
  }
  try_deliver();
}

void SequencerNode::try_deliver() {
  for (;;) {
    auto ticket = tickets_.find(next_deliver_);
    if (ticket == tickets_.end()) break;
    auto data = data_.find(ticket->second);
    if (data == data_.end()) break;
    delivered_.push_back(
        Delivery{ProcessorId{ticket->second.source}, next_deliver_, data->second});
    ++next_deliver_;
  }
}

void SequencerNode::request_missing(TimePoint now) {
  if (now - last_nack_ < nack_interval_) return;
  bool nacked = false;
  // Ticket gaps.
  for (std::uint64_t g = next_deliver_; g <= highest_ticket_ && g < next_deliver_ + 64; ++g) {
    if (!tickets_.contains(g)) {
      Writer w;
      for (std::uint8_t b : kMagic) w.u8(b);
      w.u8(kNack);
      w.u8(kNackTicket);
      w.u32(0);
      w.u64(g);
      w.u64(g);
      out_.push_back(net::Datagram{group_addr_, std::move(w).take()});
      stats_.nacks_sent += 1;
      nacked = true;
    }
  }
  // Data referenced by a ticket but not received.
  for (auto it = tickets_.lower_bound(next_deliver_); it != tickets_.end(); ++it) {
    if (!data_.contains(it->second)) {
      Writer w;
      for (std::uint8_t b : kMagic) w.u8(b);
      w.u8(kNack);
      w.u8(kNackData);
      w.u32(it->second.source);
      w.u64(it->second.local_seq);
      w.u64(it->second.local_seq);
      out_.push_back(net::Datagram{group_addr_, std::move(w).take()});
      stats_.nacks_sent += 1;
      nacked = true;
    }
  }
  if (nacked) last_nack_ = now;
}

void SequencerNode::on_datagram(TimePoint now, const net::Datagram& datagram) {
  try {
    Reader r(datagram.payload);
    for (std::uint8_t expected : kMagic) {
      if (r.u8() != expected) return;
    }
    const std::uint8_t type = r.u8();
    switch (type) {
      case kData: {
        const ProcessorId source{r.u32()};
        const std::uint64_t local_seq = r.u64();
        Bytes payload = r.blob();
        data_.emplace(DataKey{source.raw(), local_seq}, std::move(payload));
        if (is_sequencer()) sequence_pending(now);
        try_deliver();
        break;
      }
      case kTicket: {
        const std::uint64_t global = r.u64();
        const ProcessorId source{r.u32()};
        const std::uint64_t local_seq = r.u64();
        tickets_[global] = DataKey{source.raw(), local_seq};
        highest_ticket_ = std::max(highest_ticket_, global);
        std::uint64_t& ticketed = ticketed_up_to_[source.raw()];
        ticketed = std::max(ticketed, local_seq);
        try_deliver();
        break;
      }
      case kNack: {
        const std::uint8_t kind = r.u8();
        const std::uint32_t source = r.u32();
        const std::uint64_t from = r.u64();
        const std::uint64_t to = r.u64();
        if (kind == kNackData) {
          // The original source (and the sequencer, which also holds the
          // data) answers.
          if (source == self_.raw() || is_sequencer()) {
            for (std::uint64_t s = from; s <= to; ++s) {
              auto it = data_.find({source, s});
              if (it != data_.end()) {
                send_data(now, ProcessorId{source}, s, it->second, true);
              }
            }
          }
        } else if (kind == kNackTicket && is_sequencer()) {
          for (std::uint64_t g = from; g <= to; ++g) {
            auto it = tickets_.find(g);
            if (it != tickets_.end()) {
              send_ticket(g, ProcessorId{it->second.source}, it->second.local_seq);
              stats_.retransmissions += 1;
            }
          }
        }
        break;
      }
      default:
        break;
    }
  } catch (const CodecError&) {
    // malformed: drop
  }
}

void SequencerNode::tick(TimePoint now) {
  if (is_sequencer()) sequence_pending(now);
  try_deliver();
  request_missing(now);

  if (now - last_reannounce_ >= nack_interval_ * 4) {
    bool announced = false;
    // Source-side healing: our own data the sequencer has not ticketed yet
    // may have been lost on the way there — re-multicast it.
    const std::uint64_t ticketed = ticketed_up_to_[self_.raw()];
    for (std::uint64_t s = ticketed + 1; s <= next_local_seq_ && s <= ticketed + 16; ++s) {
      auto it = data_.find({self_.raw(), s});
      if (it != data_.end()) {
        send_data(now, self_, s, it->second, /*retransmission=*/true);
        announced = true;
      }
    }
    // Sequencer-side healing: when idle, re-announce the newest ticket so a
    // receiver that lost the tail learns the gap and NACKs.
    if (is_sequencer() && next_global_ > 1) {
      auto it = tickets_.find(next_global_ - 1);
      if (it != tickets_.end()) {
        send_ticket(next_global_ - 1, ProcessorId{it->second.source},
                    it->second.local_seq);
        announced = true;
      }
    }
    if (announced) last_reannounce_ = now;
  }
}

std::vector<net::Datagram> SequencerNode::take_packets() {
  std::vector<net::Datagram> out;
  out.swap(out_);
  return out;
}

std::vector<Delivery> SequencerNode::take_deliveries() {
  std::vector<Delivery> out;
  out.swap(delivered_);
  return out;
}

}  // namespace ftcorba::baseline
