// tokenring.hpp — rotating-token total-order broadcast (the Totem family
// the paper's §8 cites): a token circulates the logical ring of members;
// only the holder multicasts, stamping each message with the global
// sequence number carried by the token. Receivers deliver in global order
// and NACK gaps; any member holding a message may retransmit it.
//
// Latency grows with ring size (a sender must wait for the token) while
// throughput stays high under load — the classic contrast with both the
// sequencer and FTMP's symmetric ordering (benches E2/E9). Token loss is
// healed by a generation-stamped regeneration at the smallest member id.
// (No membership changes; baselines are evaluated fault-free.)
#pragma once

#include <deque>
#include <map>

#include "baseline/common.hpp"
#include "common/codec.hpp"

namespace ftcorba::baseline {

/// Wire statistics of one node.
struct TokenRingStats {
  std::uint64_t data_sent = 0;
  std::uint64_t tokens_sent = 0;
  std::uint64_t nacks_sent = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t tokens_regenerated = 0;
};

/// One member of a token-ring ordered-broadcast group.
class TokenRingNode : public TotalOrderNode {
 public:
  /// `members` must be identical at every node. The smallest id initially
  /// holds (and regenerates) the token. `max_burst` bounds messages sent
  /// per token visit.
  TokenRingNode(ProcessorId self, std::vector<ProcessorId> members,
                McastAddress group_addr, std::size_t max_burst = 16,
                Duration token_timeout = 50 * kMillisecond,
                Duration nack_interval = 5 * kMillisecond);

  void broadcast(TimePoint now, BytesView payload) override;
  void on_datagram(TimePoint now, const net::Datagram& datagram) override;
  void tick(TimePoint now) override;
  [[nodiscard]] std::vector<net::Datagram> take_packets() override;
  [[nodiscard]] std::vector<Delivery> take_deliveries() override;

  [[nodiscard]] const TokenRingStats& stats() const { return stats_; }

 private:
  void hold_token(TimePoint now, std::uint64_t generation, std::uint64_t next_global);
  void pass_token(TimePoint now);
  void try_deliver();
  void request_missing(TimePoint now);
  [[nodiscard]] ProcessorId successor() const;

  ProcessorId self_;
  std::vector<ProcessorId> members_;
  McastAddress group_addr_;
  std::size_t max_burst_;
  Duration token_timeout_;
  Duration nack_interval_;

  std::deque<Bytes> pending_;  // locally queued, waiting for the token
  std::map<std::uint64_t, std::pair<std::uint32_t, Bytes>> store_;  // global -> (src, payload)
  std::uint64_t next_deliver_ = 1;
  std::uint64_t highest_seen_ = 0;
  bool holding_ = false;
  std::uint64_t generation_ = 1;
  std::uint64_t token_next_global_ = 1;
  TimePoint last_token_activity_ = 0;
  TimePoint last_nack_ = -1'000'000'000;

  std::vector<net::Datagram> out_;
  std::vector<Delivery> delivered_;
  TokenRingStats stats_;
};

}  // namespace ftcorba::baseline
