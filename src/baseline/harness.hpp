// harness.hpp — discrete-event driver for TotalOrderNode baselines over the
// same SimNetwork the FTMP stacks use (apples-to-apples benches).
#pragma once

#include <map>
#include <memory>

#include "baseline/common.hpp"
#include "common/clock.hpp"
#include "net/sim_network.hpp"

namespace ftcorba::baseline {

/// A timestamped delivery, as accumulated by the harness.
struct TimedDelivery {
  TimePoint at{};
  Delivery delivery;
};

/// Drives a set of baseline nodes over a simulated network.
class BaselineHarness {
 public:
  explicit BaselineHarness(net::LinkModel link = {}, std::uint64_t seed = 1,
                           Duration granularity = 1 * kMillisecond);

  /// Registers a node; the harness subscribes it to `addr`.
  void add_node(ProcessorId id, McastAddress addr, std::unique_ptr<TotalOrderNode> node);

  /// The node (for broadcast calls and stats).
  [[nodiscard]] TotalOrderNode& node(ProcessorId id) { return *nodes_.at(id); }

  [[nodiscard]] net::SimNetwork& network() { return net_; }
  [[nodiscard]] TimePoint now() const { return now_; }

  /// Broadcasts a payload from `id` at the current time.
  void broadcast(ProcessorId id, BytesView payload);

  void run_until(TimePoint t);
  void run_for(Duration d) { run_until(now_ + d); }

  /// Deliveries accumulated at a node, in delivery order.
  [[nodiscard]] const std::vector<TimedDelivery>& delivered(ProcessorId id) const {
    return delivered_.at(id);
  }

  void clear_deliveries();

 private:
  void flush(ProcessorId id);

  net::SimNetwork net_;
  Duration granularity_;
  TimePoint now_ = 0;
  TimePoint next_tick_;
  std::map<ProcessorId, std::unique_ptr<TotalOrderNode>> nodes_;
  std::map<ProcessorId, std::vector<TimedDelivery>> delivered_;
};

}  // namespace ftcorba::baseline
