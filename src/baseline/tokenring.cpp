#include "baseline/tokenring.hpp"

#include <algorithm>

namespace ftcorba::baseline {

namespace {
constexpr std::uint8_t kMagic[4] = {'T', 'K', 'R', 'B'};
enum : std::uint8_t { kData = 1, kToken = 2, kNack = 3 };
}  // namespace

TokenRingNode::TokenRingNode(ProcessorId self, std::vector<ProcessorId> members,
                             McastAddress group_addr, std::size_t max_burst,
                             Duration token_timeout, Duration nack_interval)
    : self_(self),
      members_(std::move(members)),
      group_addr_(group_addr),
      max_burst_(max_burst),
      token_timeout_(token_timeout),
      nack_interval_(nack_interval) {
  std::sort(members_.begin(), members_.end());
  // The smallest id starts with the token.
  holding_ = self_ == members_.front();
}

ProcessorId TokenRingNode::successor() const {
  auto it = std::find(members_.begin(), members_.end(), self_);
  ++it;
  return it == members_.end() ? members_.front() : *it;
}

void TokenRingNode::broadcast(TimePoint now, BytesView payload) {
  pending_.emplace_back(payload.begin(), payload.end());
  if (holding_) hold_token(now, generation_, token_next_global_);
}

void TokenRingNode::hold_token(TimePoint now, std::uint64_t generation,
                               std::uint64_t next_global) {
  holding_ = true;
  generation_ = generation;
  token_next_global_ = next_global;
  last_token_activity_ = now;
  std::size_t sent = 0;
  while (!pending_.empty() && sent < max_burst_) {
    const std::uint64_t global = token_next_global_++;
    Bytes payload = std::move(pending_.front());
    pending_.pop_front();
    store_[global] = {self_.raw(), payload};
    highest_seen_ = std::max(highest_seen_, global);
    Writer w;
    for (std::uint8_t b : kMagic) w.u8(b);
    w.u8(kData);
    w.u32(self_.raw());
    w.u64(global);
    w.blob(payload);
    out_.push_back(net::Datagram{group_addr_, std::move(w).take()});
    stats_.data_sent += 1;
    ++sent;
  }
  try_deliver();
  pass_token(now);
}

void TokenRingNode::pass_token(TimePoint now) {
  holding_ = false;
  last_token_activity_ = now;
  Writer w;
  for (std::uint8_t b : kMagic) w.u8(b);
  w.u8(kToken);
  w.u32(successor().raw());
  w.u64(generation_);
  w.u64(token_next_global_);
  out_.push_back(net::Datagram{group_addr_, std::move(w).take()});
  stats_.tokens_sent += 1;
}

void TokenRingNode::try_deliver() {
  for (;;) {
    auto it = store_.find(next_deliver_);
    if (it == store_.end()) break;
    delivered_.push_back(
        Delivery{ProcessorId{it->second.first}, next_deliver_, it->second.second});
    ++next_deliver_;
  }
}

void TokenRingNode::request_missing(TimePoint now) {
  if (next_deliver_ > highest_seen_) return;
  if (now - last_nack_ < nack_interval_) return;
  last_nack_ = now;
  std::size_t nacked = 0;
  for (std::uint64_t g = next_deliver_; g <= highest_seen_ && nacked < 32; ++g) {
    if (store_.contains(g)) continue;
    Writer w;
    for (std::uint8_t b : kMagic) w.u8(b);
    w.u8(kNack);
    w.u64(g);
    w.u64(g);
    out_.push_back(net::Datagram{group_addr_, std::move(w).take()});
    stats_.nacks_sent += 1;
    ++nacked;
  }
}

void TokenRingNode::on_datagram(TimePoint now, const net::Datagram& datagram) {
  try {
    Reader r(datagram.payload);
    for (std::uint8_t expected : kMagic) {
      if (r.u8() != expected) return;
    }
    const std::uint8_t type = r.u8();
    switch (type) {
      case kData: {
        const std::uint32_t source = r.u32();
        const std::uint64_t global = r.u64();
        Bytes payload = r.blob();
        highest_seen_ = std::max(highest_seen_, global);
        last_token_activity_ = now;  // data implies the token is alive
        store_.emplace(global, std::make_pair(source, std::move(payload)));
        try_deliver();
        break;
      }
      case kToken: {
        const ProcessorId dest{r.u32()};
        const std::uint64_t generation = r.u64();
        const std::uint64_t next_global = r.u64();
        last_token_activity_ = now;
        // The token's counter reveals how many messages exist: a tail loss
        // (last data packet dropped here) becomes a NACKable gap.
        if (next_global > 0) {
          highest_seen_ = std::max(highest_seen_, next_global - 1);
        }
        if (generation < generation_) break;  // stale token (pre-regeneration)
        generation_ = std::max(generation_, generation);
        if (dest == self_) {
          if (pending_.empty()) {
            // Nothing to send: forward immediately.
            token_next_global_ = next_global;
            holding_ = true;
            pass_token(now);
          } else {
            hold_token(now, generation, next_global);
          }
        }
        break;
      }
      case kNack: {
        const std::uint64_t from = r.u64();
        const std::uint64_t to = r.u64();
        for (std::uint64_t g = from; g <= to; ++g) {
          auto it = store_.find(g);
          if (it == store_.end()) continue;
          // Deterministic single responder per seq to avoid storms: the
          // member whose rank matches g answers; the original source
          // always answers.
          const std::size_t rank =
              std::find(members_.begin(), members_.end(), self_) - members_.begin();
          if (it->second.first != self_.raw() && g % members_.size() != rank) continue;
          Writer w;
          for (std::uint8_t b : kMagic) w.u8(b);
          w.u8(kData);
          w.u32(it->second.first);
          w.u64(g);
          w.blob(it->second.second);
          out_.push_back(net::Datagram{group_addr_, std::move(w).take()});
          stats_.retransmissions += 1;
        }
        break;
      }
      default:
        break;
    }
  } catch (const CodecError&) {
    // malformed: drop
  }
}

void TokenRingNode::tick(TimePoint now) {
  try_deliver();
  request_missing(now);
  // Kick off / continue circulation if we are sitting on the token (the
  // initial holder starts here; later visits pass inside on_datagram).
  if (holding_) {
    hold_token(now, generation_, token_next_global_);
  }
  // Token regeneration: if the ring has been silent too long, the smallest
  // id re-issues the token with a higher generation.
  if (self_ == members_.front() && !holding_ &&
      now - last_token_activity_ > token_timeout_) {
    generation_ += 1;
    token_next_global_ = std::max(token_next_global_, highest_seen_ + 1);
    stats_.tokens_regenerated += 1;
    hold_token(now, generation_, token_next_global_);
  }
}

std::vector<net::Datagram> TokenRingNode::take_packets() {
  std::vector<net::Datagram> out;
  out.swap(out_);
  return out;
}

std::vector<Delivery> TokenRingNode::take_deliveries() {
  std::vector<Delivery> out;
  out.swap(delivered_);
  return out;
}

}  // namespace ftcorba::baseline
