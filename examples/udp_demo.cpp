// udp_demo — FTMP over real UDP IP-Multicast sockets (the paper's actual
// substrate). Three stacks run in one process, each behind its own
// UdpDriver on the loopback interface, and exchange totally-ordered
// messages through the kernel.
//
// Exits cleanly with a notice if the environment forbids multicast.
//
//   $ ./udp_demo
#include <cstdio>
#include <memory>

#include "ftmp/udp_driver.hpp"

using namespace ftcorba;
using namespace ftcorba::ftmp;

int main() {
  const FtDomainId domain{1};
  const McastAddress domain_addr{0x0101};
  const ProcessorGroupId group{1};
  const McastAddress group_addr{0x0202};
  const std::vector<ProcessorId> members{ProcessorId{1}, ProcessorId{2}, ProcessorId{3}};
  const ConnectionId conn{domain, ObjectGroupId{1}, domain, ObjectGroupId{2}};

  std::vector<std::unique_ptr<Stack>> stacks;
  std::vector<std::unique_ptr<UdpDriver>> drivers;
  try {
    for (ProcessorId p : members) {
      stacks.push_back(std::make_unique<Stack>(p, domain, domain_addr));
      net::UdpMulticastTransport::Options options;
      options.port = 30771;
      drivers.push_back(std::make_unique<UdpDriver>(*stacks.back(), options));
    }
  } catch (const net::TransportError& e) {
    std::printf("UDP multicast unavailable in this environment (%s); skipping demo\n",
                e.what());
    return 0;
  }

  const TimePoint start = UdpDriver::wall_now();
  for (auto& s : stacks) s->create_group(start, group, group_addr, members);

  auto pump_all = [&](Duration d) {
    const TimePoint until = UdpDriver::wall_now() + d;
    while (UdpDriver::wall_now() < until) {
      for (auto& drv : drivers) drv->poll_once(200 * kMicrosecond);
    }
  };

  pump_all(50 * kMillisecond);  // warm up: heartbeats establish bounds

  for (int round = 0; round < 3; ++round) {
    for (std::size_t i = 0; i < stacks.size(); ++i) {
      const std::string text = "udp message " + std::to_string(round) + " from " +
                               to_string(members[i]);
      stacks[i]->group(group)->send_regular(UdpDriver::wall_now(), conn,
                                            std::uint64_t(round + 1), bytes_of(text));
    }
    pump_all(20 * kMillisecond);
  }
  pump_all(300 * kMillisecond);

  std::vector<std::vector<std::string>> transcripts(stacks.size());
  for (std::size_t i = 0; i < drivers.size(); ++i) {
    for (const Event& ev : drivers[i]->take_events()) {
      if (const auto* m = std::get_if<DeliveredMessage>(&ev)) {
        transcripts[i].emplace_back(m->giop_message.begin(), m->giop_message.end());
      }
    }
  }

  for (std::size_t i = 0; i < transcripts.size(); ++i) {
    std::printf("--- %s delivered %zu messages over the wire ---\n",
                to_string(members[i]).c_str(), transcripts[i].size());
    for (const std::string& line : transcripts[i]) std::printf("  %s\n", line.c_str());
  }

  if (transcripts[0].size() != 9) {
    std::printf("note: expected 9 deliveries; multicast loopback may be flaky here\n");
    return 0;
  }
  for (const auto& t : transcripts) {
    if (t != transcripts[0]) {
      std::printf("ERROR: transcripts diverge\n");
      return 1;
    }
  }
  std::printf("\nidentical total order at all three kernels-attached stacks\n");
  return 0;
}
