// naming_service — a replicated CORBA-style Naming Service over FTMP:
// clients bind stringified object references (FTIOR:...) under names and
// resolve them later; the registry itself is an actively replicated object,
// so it survives the crash of a registry replica. A resolved reference is
// then used to reach a second replicated object (a greeter), showing the
// whole reference-passing loop.
//
//   $ ./naming_service
#include <cstdio>
#include <map>
#include <memory>
#include <string>

#include "ft/replication.hpp"
#include "ftmp/sim_harness.hpp"
#include "orb/ior.hpp"
#include "orb/orb.hpp"

using namespace ftcorba;

namespace {

const FtDomainId kClientDomain{1};
const FtDomainId kServerDomain{2};
const McastAddress kClientDomainAddr{100};
const McastAddress kServerDomainAddr{101};
const ProcessorGroupId kServerGroup{1};
const McastAddress kServerGroupAddr{200};
const orb::ObjectKey kNamingKey{"NameService"};
const orb::ObjectKey kGreeterKey{"greeter"};

ConnectionId service_conn() {
  return ConnectionId{kClientDomain, ObjectGroupId{10}, kServerDomain, ObjectGroupId{20}};
}

/// bind(name, ior) / resolve(name) -> ior / list() -> count, names.
class NameRegistry : public ft::StateMachine {
 public:
  giop::ReplyStatus apply(const std::string& operation, giop::CdrReader& in,
                          giop::CdrWriter& out) override {
    if (operation == "bind") {
      const std::string name = in.string();
      const std::string ior = in.string();
      names_[name] = ior;
      out.boolean(true);
      return giop::ReplyStatus::kNoException;
    }
    if (operation == "resolve") {
      const std::string name = in.string();
      auto it = names_.find(name);
      if (it == names_.end()) {
        out.string("NotFound: " + name);
        return giop::ReplyStatus::kUserException;
      }
      out.string(it->second);
      return giop::ReplyStatus::kNoException;
    }
    if (operation == "list") {
      out.ulong_(static_cast<std::uint32_t>(names_.size()));
      for (const auto& [name, ior] : names_) out.string(name);
      return giop::ReplyStatus::kNoException;
    }
    out.string("unknown operation");
    return giop::ReplyStatus::kUserException;
  }
  Bytes snapshot() const override {
    giop::CdrWriter w;
    w.ulong_(static_cast<std::uint32_t>(names_.size()));
    for (const auto& [name, ior] : names_) {
      w.string(name);
      w.string(ior);
    }
    return w.bytes();
  }
  void restore(BytesView s) override {
    names_.clear();
    giop::CdrReader r(s);
    const std::uint32_t n = r.ulong_();
    for (std::uint32_t i = 0; i < n; ++i) {
      const std::string name = r.string();
      names_[name] = r.string();
    }
  }

 private:
  std::map<std::string, std::string> names_;
};

/// greet(who) -> string.
class Greeter : public ft::StateMachine {
 public:
  giop::ReplyStatus apply(const std::string& operation, giop::CdrReader& in,
                          giop::CdrWriter& out) override {
    if (operation == "greet") {
      out.string("hello, " + in.string() + "! (from the replicated greeter)");
      return giop::ReplyStatus::kNoException;
    }
    out.string("unknown operation");
    return giop::ReplyStatus::kUserException;
  }
  Bytes snapshot() const override { return {}; }
  void restore(BytesView) override {}
};

}  // namespace

int main() {
  ftmp::SimHarness sim({}, /*seed=*/321);
  const std::vector<ProcessorId> servers{ProcessorId{1}, ProcessorId{2}, ProcessorId{3}};
  const std::vector<ProcessorId> clients{ProcessorId{10}};
  std::map<ProcessorId, std::unique_ptr<orb::Orb>> orbs;

  for (ProcessorId p : servers) sim.add_processor(p, kServerDomain, kServerDomainAddr);
  for (ProcessorId p : clients) sim.add_processor(p, kClientDomain, kClientDomainAddr);
  for (ProcessorId p : servers) {
    sim.stack(p).create_group(sim.now(), kServerGroup, kServerGroupAddr, servers);
    sim.stack(p).serve_connections(kServerGroup);
  }
  for (ProcessorId p : sim.processors()) {
    orbs[p] = std::make_unique<orb::Orb>(sim.stack(p));
    orb::Orb* o = orbs[p].get();
    sim.set_event_handler(p, [o](TimePoint t, const ftmp::Event& ev) { o->on_event(t, ev); });
  }
  // Both services live on the same server group (connection sharing, §7).
  for (ProcessorId p : servers) {
    orbs[p]->activate(kNamingKey,
                      std::make_shared<ft::ActiveReplica>(std::make_shared<NameRegistry>()));
    orbs[p]->activate(kGreeterKey,
                      std::make_shared<ft::ActiveReplica>(std::make_shared<Greeter>()));
  }

  sim.stack(clients[0]).open_connection(sim.now(), service_conn(), kServerDomainAddr,
                                        clients);
  sim.run_until_pred(
      [&] { return sim.stack(clients[0]).connection_ready(service_conn()); },
      sim.now() + 5 * kSecond);

  auto call = [&](const orb::ObjectKey& key, const std::string& op,
                  const giop::CdrWriter& args) {
    std::string out_string;
    bool ok = false, done = false;
    orbs[clients[0]]->invoke(sim.now(), service_conn(), key, op, args,
                             [&](const giop::Reply& reply, ByteOrder order) {
                               giop::CdrReader r(reply.body, order);
                               ok = reply.status == giop::ReplyStatus::kNoException;
                               if (op == "bind") {
                                 (void)r.boolean();
                                 out_string = "ok";
                               } else {
                                 out_string = r.string();
                               }
                               done = true;
                             });
    sim.run_until_pred([&] { return done; }, sim.now() + 5 * kSecond);
    return std::make_pair(ok, out_string);
  };

  // Publish the greeter's reference under a name.
  orb::GroupObjectRef greeter_ref{kServerDomain, ObjectGroupId{20}, kServerDomainAddr,
                                  kGreeterKey};
  const std::string greeter_ior = orb::to_ior(greeter_ref);
  std::printf("binding 'services/greeter' -> %.48s...\n", greeter_ior.c_str());
  giop::CdrWriter bind_args;
  bind_args.string("services/greeter");
  bind_args.string(greeter_ior);
  auto [bind_ok, ignored] = call(kNamingKey, "bind", bind_args);
  if (!bind_ok) {
    std::printf("ERROR: bind failed\n");
    return 1;
  }

  // A registry replica crashes; the naming service keeps answering.
  std::printf("crashing registry replica %s...\n", to_string(servers[1]).c_str());
  sim.crash(servers[1]);
  sim.run_until_pred(
      [&] {
        auto* g = sim.stack(servers[0]).group(kServerGroup);
        return g && !g->is_member(servers[1]);
      },
      sim.now() + 10 * kSecond);

  giop::CdrWriter resolve_args;
  resolve_args.string("services/greeter");
  auto [resolve_ok, resolved_ior] = call(kNamingKey, "resolve", resolve_args);
  if (!resolve_ok) {
    std::printf("ERROR: resolve failed after crash\n");
    return 1;
  }
  std::printf("resolved 'services/greeter' after the crash\n");

  // Use the resolved reference to invoke the greeter.
  auto parsed = orb::from_ior(resolved_ior);
  if (!parsed || parsed->key != kGreeterKey) {
    std::printf("ERROR: resolved reference did not parse back\n");
    return 1;
  }
  giop::CdrWriter greet_args;
  greet_args.string("world");
  auto [greet_ok, greeting] = call(parsed->key, "greet", greet_args);
  if (!greet_ok) {
    std::printf("ERROR: greet failed\n");
    return 1;
  }
  std::printf("greeter says: %s\n", greeting.c_str());

  // Unknown names produce a clean user exception.
  giop::CdrWriter missing_args;
  missing_args.string("services/missing");
  auto [missing_ok, error_text] = call(kNamingKey, "resolve", missing_args);
  std::printf("resolving an unbound name -> %s (%s)\n",
              missing_ok ? "unexpected success" : "user exception", error_text.c_str());
  return missing_ok ? 1 : 0;
}
