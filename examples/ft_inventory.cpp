// ft_inventory — growing a replica group under load: an inventory service
// starts with two replicas; a third processor joins the processor group
// and recovers the object state through the ordered get-state cut while
// clients keep mutating the inventory. At the end all three replicas agree
// exactly.
//
//   $ ./ft_inventory
#include <cstdio>
#include <map>
#include <memory>
#include <string>

#include "ft/replication.hpp"
#include "ftmp/sim_harness.hpp"
#include "orb/orb.hpp"

using namespace ftcorba;

namespace {

const FtDomainId kClientDomain{1};
const FtDomainId kServerDomain{2};
const McastAddress kClientDomainAddr{100};
const McastAddress kServerDomainAddr{101};
const ProcessorGroupId kGroup{1};
const McastAddress kGroupAddr{200};
const orb::ObjectKey kInventoryKey{"inventory"};

ConnectionId client_conn() {
  return ConnectionId{kClientDomain, ObjectGroupId{1}, kServerDomain, ObjectGroupId{9}};
}
ConnectionId recovery_conn() {
  return ConnectionId{kServerDomain, ObjectGroupId{9}, kServerDomain, ObjectGroupId{9}};
}

/// Deterministic inventory: item -> quantity.
class Inventory : public ft::StateMachine {
 public:
  giop::ReplyStatus apply(const std::string& operation, giop::CdrReader& in,
                          giop::CdrWriter& out) override {
    if (operation == "restock") {
      const std::string item = in.string();
      const std::int64_t qty = in.longlong_();
      stock_[item] += qty;
      out.longlong_(stock_[item]);
      return giop::ReplyStatus::kNoException;
    }
    if (operation == "ship") {
      const std::string item = in.string();
      const std::int64_t qty = in.longlong_();
      if (stock_[item] < qty) {
        out.string("out of stock: " + item);
        return giop::ReplyStatus::kUserException;
      }
      stock_[item] -= qty;
      out.longlong_(stock_[item]);
      return giop::ReplyStatus::kNoException;
    }
    out.string("unknown operation");
    return giop::ReplyStatus::kUserException;
  }
  Bytes snapshot() const override {
    giop::CdrWriter w;
    w.ulong_(static_cast<std::uint32_t>(stock_.size()));
    for (const auto& [item, qty] : stock_) {
      w.string(item);
      w.longlong_(qty);
    }
    return w.bytes();
  }
  void restore(BytesView snapshot) override {
    stock_.clear();
    giop::CdrReader r(snapshot);
    const std::uint32_t n = r.ulong_();
    for (std::uint32_t i = 0; i < n; ++i) {
      const std::string item = r.string();
      stock_[item] = r.longlong_();
    }
  }
  const std::map<std::string, std::int64_t>& stock() const { return stock_; }

 private:
  std::map<std::string, std::int64_t> stock_;
};

}  // namespace

int main() {
  ftmp::SimHarness sim({}, /*seed=*/55);
  const std::vector<ProcessorId> servers{ProcessorId{1}, ProcessorId{2}};
  const ProcessorId newbie{3};
  const std::vector<ProcessorId> clients{ProcessorId{10}};

  std::map<ProcessorId, std::unique_ptr<orb::Orb>> orbs;
  std::map<ProcessorId, std::shared_ptr<Inventory>> inventories;

  for (ProcessorId p : servers) sim.add_processor(p, kServerDomain, kServerDomainAddr);
  sim.add_processor(newbie, kServerDomain, kServerDomainAddr);
  for (ProcessorId p : clients) sim.add_processor(p, kClientDomain, kClientDomainAddr);
  for (ProcessorId p : servers) {
    sim.stack(p).create_group(sim.now(), kGroup, kGroupAddr, servers);
    sim.stack(p).serve_connections(kGroup);
  }
  for (ProcessorId p : sim.processors()) {
    orbs[p] = std::make_unique<orb::Orb>(sim.stack(p));
    orb::Orb* o = orbs[p].get();
    sim.set_event_handler(p, [o](TimePoint t, const ftmp::Event& ev) { o->on_event(t, ev); });
  }
  for (ProcessorId p : servers) {
    inventories[p] = std::make_shared<Inventory>();
    orbs[p]->activate(kInventoryKey, std::make_shared<ft::ActiveReplica>(inventories[p]));
  }

  sim.stack(clients[0]).open_connection(sim.now(), client_conn(), kServerDomainAddr, clients);
  sim.run_until_pred(
      [&] { return sim.stack(clients[0]).connection_ready(client_conn()); },
      sim.now() + 5 * kSecond);

  auto mutate = [&](const std::string& op, const std::string& item, std::int64_t qty) {
    bool done = false;
    giop::CdrWriter args;
    args.string(item);
    args.longlong_(qty);
    orbs[clients[0]]->invoke(sim.now(), client_conn(), kInventoryKey, op, args,
                             [&](const giop::Reply& reply, ByteOrder order) {
                               giop::CdrReader r(reply.body, order);
                               if (reply.status == giop::ReplyStatus::kNoException) {
                                 std::printf("  %-8s %-8s x%-4lld -> %lld on hand\n",
                                             op.c_str(), item.c_str(),
                                             static_cast<long long>(qty),
                                             static_cast<long long>(r.longlong_()));
                               } else {
                                 std::printf("  %-8s %-8s x%-4lld -> %s\n", op.c_str(),
                                             item.c_str(), static_cast<long long>(qty),
                                             r.string().c_str());
                               }
                               done = true;
                             });
    sim.run_until_pred([&] { return done; }, sim.now() + 5 * kSecond);
  };

  std::printf("phase 1: two replicas serving\n");
  mutate("restock", "widgets", 100);
  mutate("restock", "gizmos", 40);
  mutate("ship", "widgets", 30);

  std::printf("\nphase 2: %s joins the group and recovers state under load\n",
              to_string(newbie).c_str());
  sim.stack(newbie).expect_join(kGroup, kGroupAddr);
  sim.stack(servers[0]).add_processor(sim.now(), kGroup, newbie);
  sim.run_until_pred(
      [&] {
        auto* g = sim.stack(newbie).group(kGroup);
        return g && g->is_member(newbie);
      },
      sim.now() + 5 * kSecond);
  sim.stack(newbie).serve_connections(kGroup);

  auto machine3 = std::make_shared<Inventory>();
  ft::ReplicaRecovery recovery(*orbs[newbie], recovery_conn(), kInventoryKey, machine3);
  recovery.start(sim.now());
  // Mutations racing the state transfer: the ordered cut guarantees the
  // new replica sees each exactly once (snapshot xor replay).
  mutate("ship", "gizmos", 5);
  mutate("restock", "widgets", 25);
  sim.run_until_pred([&] { return recovery.done(); }, sim.now() + 5 * kSecond);
  inventories[newbie] = machine3;
  std::printf("  recovery complete\n");

  std::printf("\nphase 3: all three replicas serving\n");
  mutate("ship", "widgets", 10);
  mutate("ship", "gizmos", 100);  // rejected everywhere identically
  sim.run_for(500 * kMillisecond);

  std::printf("\nfinal stock at every replica:\n");
  bool consistent = true;
  for (ProcessorId p : {servers[0], servers[1], newbie}) {
    std::printf("  %s:", to_string(p).c_str());
    for (const auto& [item, qty] : inventories[p]->stock()) {
      std::printf(" %s=%lld", item.c_str(), static_cast<long long>(qty));
    }
    std::printf("\n");
    consistent = consistent && inventories[p]->stock() == inventories[servers[0]]->stock();
  }
  if (!consistent) {
    std::printf("ERROR: replica divergence!\n");
    return 1;
  }
  std::printf("all replicas agree, including the one that joined mid-run\n");
  return 0;
}
