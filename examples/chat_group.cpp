// chat_group — totally-ordered group chat with dynamic membership: users
// post concurrently (everyone sees the identical transcript), a new user
// joins mid-conversation via AddProcessor, and a user leaves via
// RemoveProcessor.
//
//   $ ./chat_group
#include <cstdio>
#include <string>

#include "ftmp/sim_harness.hpp"

using namespace ftcorba;
using namespace ftcorba::ftmp;

namespace {

const FtDomainId kDomain{1};
const McastAddress kDomainAddr{100};
const ProcessorGroupId kRoom{1};
const McastAddress kRoomAddr{200};

const ConnectionId kChat{FtDomainId{1}, ObjectGroupId{1}, FtDomainId{1}, ObjectGroupId{1}};

const char* name_of(ProcessorId p) {
  switch (p.raw()) {
    case 1: return "alice";
    case 2: return "bob";
    case 3: return "carol";
    case 4: return "dave";
    default: return "?";
  }
}

}  // namespace

int main() {
  SimHarness sim({}, /*seed=*/99);
  const ProcessorId alice{1}, bob{2}, carol{3}, dave{4};
  std::vector<ProcessorId> founders{alice, bob, carol};

  for (ProcessorId p : {alice, bob, carol, dave}) {
    sim.add_processor(p, kDomain, kDomainAddr);
  }
  for (ProcessorId p : founders) {
    sim.stack(p).create_group(sim.now(), kRoom, kRoomAddr, founders);
  }

  std::uint64_t msg_num = 0;
  auto post = [&](ProcessorId who, const std::string& text) {
    sim.stack(who).group(kRoom)->send_regular(sim.now(), kChat, ++msg_num,
                                              bytes_of(std::string(name_of(who)) +
                                                       ": " + text));
  };

  // Concurrent chatter: all three post in the same instant — the total
  // order decides the transcript, identically for everyone.
  post(alice, "did the deploy go out?");
  post(bob, "yes, 10 minutes ago");
  post(carol, "dashboards look clean");
  sim.run_for(50 * kMillisecond);

  // Dave joins mid-conversation (sponsored by Alice).
  sim.stack(dave).expect_join(kRoom, kRoomAddr);
  sim.stack(alice).add_processor(sim.now(), kRoom, dave);
  sim.run_until_pred(
      [&] {
        auto* g = sim.stack(dave).group(kRoom);
        return g && g->is_member(dave);
      },
      sim.now() + 2 * kSecond);
  std::printf("* dave joined the room (membership: %zu users)\n\n",
              sim.stack(dave).group(kRoom)->membership().members.size());

  post(dave, "what did I miss?");
  post(alice, "scroll up :)");
  sim.run_for(50 * kMillisecond);

  // Bob leaves (planned removal).
  sim.stack(alice).remove_processor(sim.now(), kRoom, bob);
  sim.run_for(200 * kMillisecond);
  post(carol, "bob left, it's quiet now");
  sim.run_for(300 * kMillisecond);

  // Print each user's transcript; they must agree on the common prefix.
  for (ProcessorId p : {alice, carol, dave}) {
    std::printf("=== transcript as seen by %s ===\n", name_of(p));
    for (const DeliveredMessage& m : sim.delivered(p, kRoom)) {
      std::printf("  %s\n",
                  std::string(m.giop_message.begin(), m.giop_message.end()).c_str());
    }
    std::printf("\n");
  }

  const auto a = sim.delivered(alice, kRoom);
  const auto c = sim.delivered(carol, kRoom);
  if (a.size() != c.size()) {
    std::printf("ERROR: transcript lengths differ\n");
    return 1;
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].giop_message != c[i].giop_message) {
      std::printf("ERROR: transcripts diverge at line %zu\n", i);
      return 1;
    }
  }
  // Dave sees only post-join messages, in the same relative order.
  const auto d = sim.delivered(dave, kRoom);
  std::printf("alice/carol transcripts identical (%zu lines); dave saw the %zu "
              "lines posted after he joined\n",
              a.size(), d.size());
  return 0;
}
