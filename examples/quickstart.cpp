// quickstart — the smallest complete FTMP program: three processors form a
// processor group over the simulated network, multicast totally-ordered
// messages, and print the (identical) delivery sequences.
//
//   $ ./quickstart
#include <cstdio>

#include "ftmp/sim_harness.hpp"

using namespace ftcorba;
using namespace ftcorba::ftmp;

int main() {
  // One fault-tolerance domain, one processor group of three members.
  const FtDomainId domain{1};
  const McastAddress domain_addr{100};
  const ProcessorGroupId group{1};
  const McastAddress group_addr{200};
  const std::vector<ProcessorId> members{ProcessorId{1}, ProcessorId{2}, ProcessorId{3}};

  // The simulated network: 100us delay, a little jitter, 5% loss — FTMP's
  // NACK-based recovery deals with the loss transparently.
  net::LinkModel link;
  link.loss = 0.05;
  SimHarness sim(link, /*seed=*/2024);

  for (ProcessorId p : members) sim.add_processor(p, domain, domain_addr);
  for (ProcessorId p : members) {
    sim.stack(p).create_group(sim.now(), group, group_addr, members);
  }

  // Every member multicasts a few messages "concurrently".
  const ConnectionId conn{domain, ObjectGroupId{1}, domain, ObjectGroupId{2}};
  for (int round = 0; round < 3; ++round) {
    for (ProcessorId p : members) {
      const std::string text =
          "hello from " + to_string(p) + " (round " + std::to_string(round) + ")";
      sim.stack(p).group(group)->send_regular(sim.now(), conn,
                                              std::uint64_t(round + 1),
                                              bytes_of(text));
    }
    sim.run_for(2 * kMillisecond);
  }
  sim.run_for(500 * kMillisecond);  // let ordering + recovery finish

  // Every member delivered the same sequence, in the same order.
  for (ProcessorId p : members) {
    std::printf("--- deliveries at %s ---\n", to_string(p).c_str());
    for (const DeliveredMessage& m : sim.delivered(p, group)) {
      std::printf("  [ts=%llu] %s\n",
                  static_cast<unsigned long long>(m.timestamp),
                  std::string(m.giop_message.begin(), m.giop_message.end()).c_str());
    }
  }

  const auto reference = sim.delivered(members[0], group);
  for (ProcessorId p : members) {
    const auto got = sim.delivered(p, group);
    if (got.size() != reference.size()) {
      std::printf("ERROR: member %s delivered %zu of %zu messages\n",
                  to_string(p).c_str(), got.size(), reference.size());
      return 1;
    }
    for (std::size_t i = 0; i < got.size(); ++i) {
      if (got[i].giop_message != reference[i].giop_message) {
        std::printf("ERROR: order divergence at %zu on %s\n", i, to_string(p).c_str());
        return 1;
      }
    }
  }
  std::printf("\nall %zu messages delivered in the same total order at all %zu members\n",
              reference.size(), members.size());
  return 0;
}
