// replicated_bank — a fault-tolerant bank account: the paper's motivating
// scenario end to end. Three server replicas host a deterministic account
// state machine behind the mini-ORB; two client replicas invoke deposits
// and withdrawals over a logical connection; one server replica crashes
// mid-run and service continues without the clients noticing.
//
//   $ ./replicated_bank
#include <cstdio>
#include <map>
#include <memory>

#include "ft/replication.hpp"
#include "ftmp/sim_harness.hpp"
#include "orb/orb.hpp"

using namespace ftcorba;

namespace {

const FtDomainId kClientDomain{1};
const FtDomainId kServerDomain{2};
const McastAddress kClientDomainAddr{100};
const McastAddress kServerDomainAddr{101};
const ProcessorGroupId kServerGroup{1};
const McastAddress kServerGroupAddr{200};
const orb::ObjectKey kAccountKey{"account:alice"};

ConnectionId bank_conn() {
  return ConnectionId{kClientDomain, ObjectGroupId{10}, kServerDomain, ObjectGroupId{20}};
}

/// Deterministic account: deposit/withdraw/balance in integer cents.
class Account : public ft::StateMachine {
 public:
  giop::ReplyStatus apply(const std::string& operation, giop::CdrReader& in,
                          giop::CdrWriter& out) override {
    if (operation == "deposit") {
      balance_ += in.longlong_();
      out.longlong_(balance_);
      return giop::ReplyStatus::kNoException;
    }
    if (operation == "withdraw") {
      const std::int64_t amount = in.longlong_();
      if (amount > balance_) {
        out.string("insufficient funds");
        return giop::ReplyStatus::kUserException;
      }
      balance_ -= amount;
      out.longlong_(balance_);
      return giop::ReplyStatus::kNoException;
    }
    if (operation == "balance") {
      out.longlong_(balance_);
      return giop::ReplyStatus::kNoException;
    }
    out.string("unknown operation");
    return giop::ReplyStatus::kUserException;
  }
  Bytes snapshot() const override {
    giop::CdrWriter w;
    w.longlong_(balance_);
    return w.bytes();
  }
  void restore(BytesView snapshot) override {
    giop::CdrReader r(snapshot);
    balance_ = r.longlong_();
  }
  std::int64_t balance() const { return balance_; }

 private:
  std::int64_t balance_ = 0;
};

}  // namespace

int main() {
  ftmp::SimHarness sim({}, /*seed=*/7);
  const std::vector<ProcessorId> servers{ProcessorId{1}, ProcessorId{2}, ProcessorId{3}};
  const std::vector<ProcessorId> clients{ProcessorId{10}, ProcessorId{11}};

  std::map<ProcessorId, std::unique_ptr<orb::Orb>> orbs;
  std::map<ProcessorId, std::shared_ptr<Account>> accounts;

  for (ProcessorId p : servers) sim.add_processor(p, kServerDomain, kServerDomainAddr);
  for (ProcessorId p : clients) sim.add_processor(p, kClientDomain, kClientDomainAddr);
  for (ProcessorId p : servers) {
    sim.stack(p).create_group(sim.now(), kServerGroup, kServerGroupAddr, servers);
    sim.stack(p).serve_connections(kServerGroup);
  }
  for (ProcessorId p : sim.processors()) {
    orbs[p] = std::make_unique<orb::Orb>(sim.stack(p));
    orb::Orb* o = orbs[p].get();
    sim.set_event_handler(p, [o](TimePoint t, const ftmp::Event& ev) { o->on_event(t, ev); });
  }
  for (ProcessorId p : servers) {
    accounts[p] = std::make_shared<Account>();
    orbs[p]->activate(kAccountKey, std::make_shared<ft::ActiveReplica>(accounts[p]));
  }

  // Clients open the logical connection (ConnectRequest/Connect + joining
  // the server's processor group happens under the hood, §7).
  for (ProcessorId p : clients) {
    sim.stack(p).open_connection(sim.now(), bank_conn(), kServerDomainAddr, clients);
  }
  sim.run_until_pred(
      [&] {
        for (ProcessorId p : clients) {
          if (!sim.stack(p).connection_ready(bank_conn())) return false;
        }
        return true;
      },
      sim.now() + 5 * kSecond);
  std::printf("connection established: clients joined the server processor group\n");

  // Both client replicas issue the same deterministic invocation sequence;
  // duplicate requests and duplicate replies are suppressed (§4).
  auto transact = [&](const std::string& op, std::int64_t amount) {
    std::int64_t result = -1;
    std::string error;
    int completions = 0;
    for (ProcessorId p : clients) {
      giop::CdrWriter args;
      args.longlong_(amount);
      orbs[p]->invoke(sim.now(), bank_conn(), kAccountKey, op, args,
                      [&](const giop::Reply& reply, ByteOrder order) {
                        giop::CdrReader r(reply.body, order);
                        if (reply.status == giop::ReplyStatus::kNoException) {
                          result = r.longlong_();
                        } else {
                          error = r.string();
                        }
                        ++completions;
                      });
    }
    sim.run_until_pred([&] { return completions == int(clients.size()); },
                       sim.now() + 5 * kSecond);
    if (error.empty()) {
      std::printf("  %-8s %6lld -> balance %lld\n", op.c_str(),
                  static_cast<long long>(amount), static_cast<long long>(result));
    } else {
      std::printf("  %-8s %6lld -> REJECTED (%s)\n", op.c_str(),
                  static_cast<long long>(amount), error.c_str());
    }
  };

  std::printf("\nphase 1: normal operation (3 healthy replicas)\n");
  transact("deposit", 10000);
  transact("withdraw", 2500);
  transact("deposit", 100);
  transact("withdraw", 99999);  // rejected deterministically everywhere

  std::printf("\nphase 2: replica %s crashes\n", to_string(servers[2]).c_str());
  sim.crash(servers[2]);
  sim.run_until_pred(
      [&] {
        auto* g = sim.stack(servers[0]).group(kServerGroup);
        return g && g->membership().members.size() == servers.size() - 1 + clients.size();
      },
      sim.now() + 10 * kSecond);
  std::printf("  membership reconfigured; fault report issued; service continues\n");

  transact("withdraw", 600);
  transact("deposit", 42);

  sim.run_for(500 * kMillisecond);
  std::printf("\nfinal replica states:\n");
  for (ProcessorId p : {servers[0], servers[1]}) {
    std::printf("  %s: balance = %lld cents\n", to_string(p).c_str(),
                static_cast<long long>(accounts[p]->balance()));
  }
  if (accounts[servers[0]]->balance() != accounts[servers[1]]->balance()) {
    std::printf("ERROR: replica divergence!\n");
    return 1;
  }
  std::printf("replicas agree: strong replica consistency maintained through the crash\n");
  return 0;
}
